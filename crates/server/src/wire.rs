//! A minimal JSON reader for the wire protocol.
//!
//! The server cannot take a serialisation dependency (the build is
//! offline), and the protocol needs only the interchange subset: finite
//! numbers, strings, booleans, arrays, objects. This is a strict
//! recursive-descent parser over the input bytes with a nesting-depth
//! cap, so untrusted frames cannot blow the stack. Writing goes through
//! [`sd_core::JsonBuf`] — the workspace's single escaper — never here.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent), kept exact —
    /// registry keys are full-range `u64` hashes that `f64` would
    /// silently round.
    Int(i128),
    /// Any other number. The protocol only uses integers;
    /// [`Json::as_u64`] and [`Json::as_i64`] reject non-integral
    /// values.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: last wins on lookup).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

/// Maximum nesting depth accepted from the wire.
const MAX_DEPTH: u32 = 64;

impl Json {
    /// Looks up a key in an object (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer that fits
    /// exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as an `i64`, if it is an integer that fits exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// A top-level object member: its key and the `(start, end)` byte span
/// of its raw value text.
pub type KeySpan = (String, (usize, usize));

/// Parses a top-level JSON object and returns, per member, the key and
/// the byte span of its raw value text. Used to splice an `answer`
/// value out of a response line without re-encoding it (byte-identical
/// cache replay checks).
pub fn top_level_spans(s: &str) -> Result<Vec<KeySpan>, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.eat(b'{') {
        return Err(p.err("expected top-level object"));
    }
    let mut spans = Vec::new();
    p.skip_ws();
    if p.eat(b'}') {
        return Ok(spans);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        if !p.eat(b':') {
            return Err(p.err("expected ':' in object"));
        }
        p.skip_ws();
        let start = p.pos;
        p.value(1)?;
        spans.push((key, (start, p.pos)));
        p.skip_ws();
        if p.eat(b',') {
            continue;
        }
        if p.eat(b'}') {
            break;
        }
        return Err(p.err("expected ',' or '}' in object"));
    }
    Ok(spans)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b']') {
                        break;
                    }
                    return Err(self.err("expected ',' or ']' in array"));
                }
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return Err(self.err("expected ':' in object"));
                    }
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    members.push((key, v));
                    self.skip_ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b'}') {
                        break;
                    }
                    return Err(self.err("expected ',' or '}' in object"));
                }
                Ok(Json::Obj(members))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Pure-integer tokens are kept exact when they fit i128:
        // registry keys are full-range u64 hashes that the f64 path
        // would round above 2^53.
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid code point")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    while matches!(self.peek(), Some(b) if b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(parse("3e2").unwrap().as_u64(), Some(300));
        let v = parse(r#"{"a":[1,"x"],"b":{"c":false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndé😀");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "\"\\ud800x\"",
            "{} {}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting() {
        let deep = "[".repeat(80) + &"]".repeat(80);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integral_checks_reject_fractions() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("-1.5").unwrap().as_i64(), None);
    }

    #[test]
    fn full_range_u64_survives_exactly() {
        // Registry keys are 64-bit hashes; values above 2^53 must not
        // round through f64.
        for v in [u64::MAX, u64::MAX - 1, (1 << 53) + 1, 1 << 53] {
            assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some(v), "{v}");
        }
        assert_eq!(
            parse(&i64::MIN.to_string()).unwrap().as_i64(),
            Some(i64::MIN)
        );
        // Beyond i64 range on the negative side: integral but not i64.
        assert_eq!(parse("-18446744073709551616").unwrap().as_i64(), None);
    }

    #[test]
    fn top_level_spans_recover_raw_values() {
        let line = r#"{"id":7,"answer":{"type":"sinks","objects":["b"]},"ok":true}"#;
        let spans = top_level_spans(line).unwrap();
        let (_, (s, e)) = spans.iter().find(|(k, _)| k == "answer").unwrap();
        assert_eq!(&line[*s..*e], r#"{"type":"sinks","objects":["b"]}"#);
    }
}
