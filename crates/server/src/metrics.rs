//! Server observability: metric families, per-request phase tracing,
//! and the slow-query ring.
//!
//! Everything here is fed from two directions:
//!
//! - **The request loop** times each request's six phases through a
//!   [`RequestTrace`] (parse → cache-lookup → registry/compile → search
//!   → serialize → write) and hands the finished trace to
//!   [`ServerMetrics::observe_request`], which updates the per-method /
//!   per-outcome counters, the cold/warm latency histograms, the
//!   per-phase time accumulators, and the rolled-up
//!   [`QueryReport`] cost counters — and captures a [`SlowEntry`] when
//!   the request ran past the configured threshold.
//! - **The telemetry stream**: a [`MetricsSink`] wraps the Oracle-side
//!   [`Sink`] so compile events ([`QueryEvent::CompileFinish`]),
//!   `Sat(φ)` partition hits/misses, and sparse-row memo traffic roll
//!   up into server-level counters while still forwarding to any
//!   user-configured sink (`--telemetry`).
//!
//! All hot-path state is lock-free ([`sd_core::metrics`]): sharded
//! counters and fixed-bucket log-scale histograms, no floats, no locks
//! on the request path. Quantiles (p50/p90/p95/p99) and gauges
//! (uptime, in-flight, queue depth, worker utilization) are derived at
//! scrape time by the `metrics` protocol method, which renders either
//! structured JSON or a Prometheus text exposition. The slow-query ring
//! is behind a `Mutex`, but is touched only by requests already slower
//! than the threshold.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

use sd_core::{Counter, Histogram, JsonBuf, QueryEvent, QueryReport, Sink};

use crate::cache::CacheStats;
use crate::proto::ErrorKind;

/// Protocol methods, as metric label values. `Unknown` covers frames
/// that never parsed far enough to have a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// `ping`.
    Ping,
    /// `register`.
    Register,
    /// `depends`.
    Depends,
    /// `sinks`.
    Sinks,
    /// `sinks_matrix`.
    SinksMatrix,
    /// `stats`.
    Stats,
    /// `metrics`.
    Metrics,
    /// `slowlog`.
    SlowLog,
    /// `shutdown`.
    Shutdown,
    /// Unparsable frame (no method).
    #[default]
    Unknown,
}

/// Number of [`Method`] variants.
pub const METHODS: usize = 10;

impl Method {
    /// Every method, in index order.
    pub const ALL: [Method; METHODS] = [
        Method::Ping,
        Method::Register,
        Method::Depends,
        Method::Sinks,
        Method::SinksMatrix,
        Method::Stats,
        Method::Metrics,
        Method::SlowLog,
        Method::Shutdown,
        Method::Unknown,
    ];

    /// The label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Ping => "ping",
            Method::Register => "register",
            Method::Depends => "depends",
            Method::Sinks => "sinks",
            Method::SinksMatrix => "sinks_matrix",
            Method::Stats => "stats",
            Method::Metrics => "metrics",
            Method::SlowLog => "slowlog",
            Method::Shutdown => "shutdown",
            Method::Unknown => "unknown",
        }
    }

    /// The metric method for a query kind.
    pub fn from_kind(kind: crate::proto::QueryKind) -> Method {
        match kind {
            crate::proto::QueryKind::Depends => Method::Depends,
            crate::proto::QueryKind::Sinks => Method::Sinks,
            crate::proto::QueryKind::SinksMatrix => Method::SinksMatrix,
        }
    }

    fn idx(self) -> usize {
        Method::ALL.iter().position(|m| *m == self).unwrap_or(0)
    }
}

/// Request outcome label values: `"ok"` plus every [`ErrorKind`].
pub const OUTCOMES: [&str; 12] = [
    "ok",
    "parse",
    "protocol",
    "too_large",
    "unknown_method",
    "unknown_system",
    "invalid",
    "timeout",
    "budget",
    "overloaded",
    "shutting_down",
    "internal",
];

fn outcome_idx(outcome: Option<ErrorKind>) -> usize {
    match outcome {
        None => 0,
        Some(ErrorKind::Parse) => 1,
        Some(ErrorKind::Protocol) => 2,
        Some(ErrorKind::TooLarge) => 3,
        Some(ErrorKind::UnknownMethod) => 4,
        Some(ErrorKind::UnknownSystem) => 5,
        Some(ErrorKind::Invalid) => 6,
        Some(ErrorKind::Timeout) => 7,
        Some(ErrorKind::Budget) => 8,
        Some(ErrorKind::Overloaded) => 9,
        Some(ErrorKind::ShuttingDown) => 10,
        Some(ErrorKind::Internal) => 11,
    }
}

/// The label for an outcome.
pub fn outcome_str(outcome: Option<ErrorKind>) -> &'static str {
    OUTCOMES[outcome_idx(outcome)]
}

/// The six request phases a [`RequestTrace`] times, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Frame parsing (JSON → `Frame`).
    Parse,
    /// Result-cache lookup (fingerprint + LRU probe).
    Cache,
    /// Registry build / φ lowering / name resolution.
    Compile,
    /// The pair search itself (`Query::run`).
    Search,
    /// Answer + envelope serialisation.
    Serialize,
    /// Writing the response line to the socket.
    Write,
}

/// Number of phases.
pub const PHASES: usize = 6;

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Parse,
        Phase::Cache,
        Phase::Compile,
        Phase::Search,
        Phase::Serialize,
        Phase::Write,
    ];

    /// The label value (`"parse"`, `"cache"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Cache => "cache",
            Phase::Compile => "compile",
            Phase::Search => "search",
            Phase::Serialize => "serialize",
            Phase::Write => "write",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Cache => 1,
            Phase::Compile => 2,
            Phase::Search => 3,
            Phase::Serialize => 4,
            Phase::Write => 5,
        }
    }
}

/// Per-request phase timings. Created when the request line arrives,
/// carried through the worker pool (it travels inside the job), and
/// finalised after the response write. Phases not exercised by a
/// request (e.g. `search` for `ping`) stay 0 — the breakdown is always
/// complete, never partial.
#[derive(Debug)]
pub struct RequestTrace {
    started: Instant,
    phase_ns: [u64; PHASES],
}

impl Default for RequestTrace {
    fn default() -> RequestTrace {
        RequestTrace::start()
    }
}

impl RequestTrace {
    /// Starts the request clock.
    pub fn start() -> RequestTrace {
        RequestTrace {
            started: Instant::now(),
            phase_ns: [0; PHASES],
        }
    }

    /// Runs `f`, attributing its wall time to `phase` (accumulating —
    /// a phase may be entered more than once).
    #[inline]
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.add(phase, t.elapsed().as_nanos() as u64);
        out
    }

    /// Adds externally measured nanoseconds to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, ns: u64) {
        self.phase_ns[phase.idx()] += ns;
    }

    /// Nanoseconds attributed to `phase` so far.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.idx()]
    }

    /// Total wall nanoseconds since the request line arrived.
    pub fn total_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}

/// One captured slow request: identity, outcome, the full phase
/// breakdown, and the query's cost report when a search ran.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotone capture sequence number.
    pub seq: u64,
    /// Capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Request method.
    pub method: Method,
    /// Request correlation id, when present.
    pub id: Option<u64>,
    /// Target system registry key (content digest), for query methods.
    pub system: Option<u64>,
    /// Canonical query fingerprint, when fingerprintable.
    pub fingerprint: Option<u64>,
    /// `None` = ok; otherwise the error kind.
    pub outcome: Option<ErrorKind>,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Total request wall nanoseconds.
    pub total_ns: u64,
    /// Per-phase nanoseconds, indexed like [`Phase::ALL`].
    pub phase_ns: [u64; PHASES],
    /// The search cost report, when a search ran.
    pub report: Option<QueryReport>,
}

impl SlowEntry {
    /// One self-contained JSON object (no trailing newline): the
    /// `slowlog` wire entries and the access-log `slow_query` lines
    /// share this encoding.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .str_field("event", "slow_query")
            .u64_field("seq", self.seq)
            .u64_field("unix_ms", self.unix_ms)
            .str_field("method", self.method.as_str());
        match self.id {
            Some(id) => j.u64_field("id", id),
            None => j.null_field("id"),
        };
        match self.system {
            Some(k) => j.u64_field("system", k),
            None => j.null_field("system"),
        };
        match self.fingerprint {
            Some(fp) => j.u64_field("fingerprint", fp),
            None => j.null_field("fingerprint"),
        };
        j.str_field("outcome", outcome_str(self.outcome))
            .bool_field("cached", self.cached)
            .u64_field("total_ns", self.total_ns);
        j.begin_obj_field("phases");
        for p in Phase::ALL {
            j.u64_field(p.as_str(), self.phase_ns[p.idx()]);
        }
        j.end_obj();
        match &self.report {
            Some(r) => {
                j.begin_obj_field("report");
                r.json_fields(&mut j);
                j.end_obj();
            }
            None => {
                j.null_field("report");
            }
        }
        j.end_obj();
        j.finish()
    }
}

/// The slow-query ring: the last `cap` entries, plus a total-captured
/// counter that keeps counting when the ring wraps.
struct SlowLog {
    ring: Mutex<std::collections::VecDeque<SlowEntry>>,
    cap: usize,
    seq: AtomicU64,
    captured: Counter,
}

impl SlowLog {
    fn new(cap: usize) -> SlowLog {
        SlowLog {
            ring: Mutex::new(std::collections::VecDeque::with_capacity(cap.min(1024))),
            cap,
            seq: AtomicU64::new(0),
            captured: Counter::new(),
        }
    }

    fn push(&self, mut entry: SlowEntry) -> SlowEntry {
        entry.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.captured.inc();
        if self.cap > 0 {
            let mut ring = self.ring.lock().expect("slowlog lock");
            if ring.len() >= self.cap {
                ring.pop_front();
            }
            ring.push_back(entry.clone());
        }
        entry
    }

    /// The most recent `limit` entries, oldest first.
    fn tail(&self, limit: usize) -> Vec<SlowEntry> {
        let ring = self.ring.lock().expect("slowlog lock");
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }
}

/// Everything [`ServerMetrics::observe_request`] needs to know about a
/// finished request beyond its timings.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestObs<'a> {
    /// Request method (defaults to [`Method::Unknown`]).
    pub method: Method,
    /// Correlation id.
    pub id: Option<u64>,
    /// `None` = ok.
    pub outcome: Option<ErrorKind>,
    /// Result-cache hit?
    pub cached: bool,
    /// Cold path? (`true` for searches and fresh compiles; `false` for
    /// cache replays and re-registrations.) Labels the histogram.
    pub cold: bool,
    /// Target system key for query/register methods.
    pub system: Option<u64>,
    /// Canonical query fingerprint.
    pub fingerprint: Option<u64>,
    /// The search cost report, when a search ran.
    pub report: Option<&'a QueryReport>,
}

/// Engine label values for `sd_engine_runs_total`.
const ENGINES: [&str; 5] = [
    "interpreted",
    "compiled-dense",
    "compiled-sparse",
    "none",
    "other",
];

fn engine_idx(engine: &str) -> usize {
    ENGINES.iter().position(|e| *e == engine).unwrap_or(4)
}

/// The server's metric families. One instance per server, shared by
/// every connection/worker thread; all recording is lock-free. When
/// constructed disabled (`--no-metrics`, the A/B bench baseline) every
/// recording call returns immediately.
pub struct ServerMetrics {
    enabled: bool,
    started: Instant,
    slow_ns: u64,
    /// requests_total[method][outcome].
    requests: Vec<Vec<Counter>>,
    /// duration histograms\[method\]\[cold as usize\] (ok requests only).
    durations: Vec<[Histogram; 2]>,
    /// phase_ns_total[method][phase].
    phases: Vec<Vec<Counter>>,
    /// Rolled-up QueryReport costs, per method.
    pair_expansions: Vec<Counter>,
    visited_pairs: Vec<Counter>,
    bfs_levels: Vec<Counter>,
    rows_reused: Vec<Counter>,
    rows_materialized: Vec<Counter>,
    /// Searches per engine kind.
    engine_runs: Vec<Counter>,
    // Oracle-side rollups fed by the telemetry sink.
    partition_hits: Counter,
    partition_misses: Counter,
    memo_rows_reused: Counter,
    memo_rows_materialized: Counter,
    compiles: Counter,
    compile_ns: Counter,
    /// Access-log lines dropped rather than blocking the request path.
    access_dropped: Counter,
    slow: SlowLog,
}

impl ServerMetrics {
    /// A metrics registry. `slow_ms` is the slow-query threshold,
    /// `slowlog_cap` the ring size; `enabled = false` turns every
    /// recording call into a no-op (scrapes then report zeros).
    pub fn new(enabled: bool, slow_ms: u64, slowlog_cap: usize) -> ServerMetrics {
        let counters = |n: usize| (0..n).map(|_| Counter::new()).collect::<Vec<_>>();
        ServerMetrics {
            enabled,
            started: Instant::now(),
            slow_ns: slow_ms.saturating_mul(1_000_000),
            requests: (0..METHODS).map(|_| counters(OUTCOMES.len())).collect(),
            durations: (0..METHODS)
                .map(|_| [Histogram::new(), Histogram::new()])
                .collect(),
            phases: (0..METHODS).map(|_| counters(PHASES)).collect(),
            pair_expansions: counters(METHODS),
            visited_pairs: counters(METHODS),
            bfs_levels: counters(METHODS),
            rows_reused: counters(METHODS),
            rows_materialized: counters(METHODS),
            engine_runs: counters(ENGINES.len()),
            partition_hits: Counter::new(),
            partition_misses: Counter::new(),
            memo_rows_reused: Counter::new(),
            memo_rows_materialized: Counter::new(),
            compiles: Counter::new(),
            compile_ns: Counter::new(),
            access_dropped: Counter::new(),
            slow: SlowLog::new(slowlog_cap),
        }
    }

    /// Whether recording is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Records one access-log line dropped (writer contended or
    /// errored).
    pub fn access_log_dropped(&self, n: u64) {
        self.access_dropped.add(n);
    }

    /// Folds a finished request into every family. Returns the
    /// serialised slow-query line when the request crossed the
    /// threshold (the caller appends it to the access log stream).
    pub fn observe_request(&self, obs: &RequestObs, trace: &RequestTrace) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let m = obs.method.idx();
        let total_ns = trace.total_ns();
        self.requests[m][outcome_idx(obs.outcome)].inc();
        if obs.outcome.is_none() {
            self.durations[m][usize::from(obs.cold)].record(total_ns);
        }
        for p in Phase::ALL {
            let ns = trace.phase_ns(p);
            if ns != 0 {
                self.phases[m][p.idx()].add(ns);
            }
        }
        if let Some(r) = obs.report {
            self.pair_expansions[m].add(r.pair_expansions);
            self.visited_pairs[m].add(r.visited_pairs);
            self.bfs_levels[m].add(u64::from(r.levels));
            self.rows_reused[m].add(r.rows_reused);
            self.rows_materialized[m].add(r.rows_materialized);
            self.engine_runs[engine_idx(r.engine)].inc();
        }
        if total_ns >= self.slow_ns {
            let unix_ms = SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64);
            let entry = self.slow.push(SlowEntry {
                seq: 0,
                unix_ms,
                method: obs.method,
                id: obs.id,
                system: obs.system,
                fingerprint: obs.fingerprint,
                outcome: obs.outcome,
                cached: obs.cached,
                total_ns,
                phase_ns: std::array::from_fn(|i| trace.phase_ns(Phase::ALL[i])),
                report: obs.report.copied(),
            });
            return Some(entry.to_json());
        }
        None
    }

    /// The most recent `limit` slow entries, oldest first.
    pub fn slowlog_tail(&self, limit: usize) -> Vec<SlowEntry> {
        self.slow.tail(limit)
    }

    /// Duration snapshot for `(method, cold)` — the bench reads server-
    /// side percentiles through this.
    pub fn duration_snapshot(&self, method: Method, cold: bool) -> sd_core::HistogramSnapshot {
        self.durations[method.idx()][usize::from(cold)].snapshot()
    }

    /// requests_total for `(method, outcome)`.
    pub fn requests_total(&self, method: Method, outcome: Option<ErrorKind>) -> u64 {
        self.requests[method.idx()][outcome_idx(outcome)].get()
    }

    /// Writes the metric families as JSON fields into an open object.
    /// `g` carries the scrape-time gauges the metrics registry does not
    /// own (queue depth, cache/registry state, …).
    pub fn json_fields(&self, g: &ScrapeGauges, j: &mut JsonBuf) {
        j.bool_field("enabled", self.enabled)
            .u64_field("uptime_s", self.uptime_s())
            .u64_field("slow_ms", self.slow_ns / 1_000_000);
        j.begin_obj_field("gauges")
            .u64_field("connections_total", g.connections_total)
            .u64_field("connections_open", g.connections_open)
            .u64_field("inflight", g.inflight)
            .u64_field("queue_depth", g.queue_depth)
            .u64_field("workers", g.workers)
            .u64_field("workers_busy", g.inflight)
            .end_obj();
        j.begin_obj_field("requests");
        for m in Method::ALL {
            let any = (0..OUTCOMES.len()).any(|o| self.requests[m.idx()][o].get() != 0);
            if !any {
                continue;
            }
            j.begin_obj_field(m.as_str());
            for (o, label) in OUTCOMES.iter().enumerate() {
                let n = self.requests[m.idx()][o].get();
                if n != 0 {
                    j.u64_field(label, n);
                }
            }
            j.end_obj();
        }
        j.end_obj();
        j.begin_obj_field("durations");
        for m in Method::ALL {
            let snaps = [
                self.durations[m.idx()][1].snapshot(),
                self.durations[m.idx()][0].snapshot(),
            ];
            if snaps.iter().all(|s| s.count == 0) {
                continue;
            }
            j.begin_obj_field(m.as_str());
            for (label, snap) in ["cold", "warm"].iter().zip(&snaps) {
                if snap.count == 0 {
                    continue;
                }
                j.begin_obj_field(label)
                    .u64_field("count", snap.count)
                    .u64_field("sum_ns", snap.sum)
                    .u64_field("p50_ns", snap.quantile(50, 100))
                    .u64_field("p90_ns", snap.quantile(90, 100))
                    .u64_field("p95_ns", snap.quantile(95, 100))
                    .u64_field("p99_ns", snap.quantile(99, 100));
                j.begin_arr_field("buckets");
                for (upper, n) in &snap.buckets {
                    j.begin_arr_elem().u64_elem(*upper).u64_elem(*n).end_arr();
                }
                j.end_arr();
                j.end_obj();
            }
            j.end_obj();
        }
        j.end_obj();
        j.begin_obj_field("phase_ns");
        for m in Method::ALL {
            let any = (0..PHASES).any(|p| self.phases[m.idx()][p].get() != 0);
            if !any {
                continue;
            }
            j.begin_obj_field(m.as_str());
            for p in Phase::ALL {
                j.u64_field(p.as_str(), self.phases[m.idx()][p.idx()].get());
            }
            j.end_obj();
        }
        j.end_obj();
        j.begin_obj_field("costs");
        for m in Method::ALL {
            let i = m.idx();
            if self.pair_expansions[i].get() == 0 && self.visited_pairs[i].get() == 0 {
                continue;
            }
            j.begin_obj_field(m.as_str())
                .u64_field("pair_expansions", self.pair_expansions[i].get())
                .u64_field("visited_pairs", self.visited_pairs[i].get())
                .u64_field("bfs_levels", self.bfs_levels[i].get())
                .u64_field("rows_reused", self.rows_reused[i].get())
                .u64_field("rows_materialized", self.rows_materialized[i].get())
                .end_obj();
        }
        j.end_obj();
        j.begin_obj_field("engines");
        for (i, label) in ENGINES.iter().enumerate() {
            let n = self.engine_runs[i].get();
            if n != 0 {
                j.u64_field(label, n);
            }
        }
        j.end_obj();
        j.begin_obj_field("oracle")
            .u64_field("partition_hits", self.partition_hits.get())
            .u64_field("partition_misses", self.partition_misses.get())
            .u64_field("memo_rows_reused", self.memo_rows_reused.get())
            .u64_field("memo_rows_materialized", self.memo_rows_materialized.get())
            .u64_field("compiles", self.compiles.get())
            .u64_field("compile_ns", self.compile_ns.get())
            .end_obj();
        j.begin_obj_field("cache")
            .u64_field("hits", g.cache.hits)
            .u64_field("misses", g.cache.misses)
            .u64_field("insertions", g.cache.insertions)
            .u64_field("evictions", g.cache.evictions)
            .u64_field("entries", g.cache.entries)
            .u64_field("capacity", g.cache.capacity)
            .end_obj();
        j.begin_obj_field("registry")
            .u64_field("systems", g.registry_systems)
            .u64_field("capacity", g.registry_cap)
            .end_obj();
        j.u64_field("access_log_dropped", self.access_dropped.get());
        j.begin_obj_field("slowlog")
            .u64_field("captured", self.slow.captured.get())
            .u64_field("capacity", self.slow.cap as u64)
            .end_obj();
    }

    /// Renders the Prometheus text exposition (counter/gauge/histogram
    /// families; histograms with cumulative `le` buckets over the
    /// non-empty buckets plus `+Inf`, and derived p50/p90/p99 gauges).
    pub fn render_prom(&self, g: &ScrapeGauges) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "# HELP sd_requests_total Requests handled, by method and outcome.\n\
             # TYPE sd_requests_total counter"
        );
        for m in Method::ALL {
            for (o, label) in OUTCOMES.iter().enumerate() {
                let n = self.requests[m.idx()][o].get();
                if n != 0 {
                    let _ = writeln!(
                        out,
                        "sd_requests_total{{method=\"{}\",outcome=\"{label}\"}} {n}",
                        m.as_str()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "# HELP sd_request_duration_ns Request wall time, successful requests only.\n\
             # TYPE sd_request_duration_ns histogram"
        );
        let mut quantile_lines = String::new();
        for m in Method::ALL {
            for (cold, label) in [(1usize, "true"), (0, "false")] {
                let snap = self.durations[m.idx()][cold].snapshot();
                if snap.count == 0 {
                    continue;
                }
                let labels = format!("method=\"{}\",cold=\"{label}\"", m.as_str());
                let mut cum = 0u64;
                for (upper, n) in &snap.buckets {
                    cum += n;
                    let _ = writeln!(
                        out,
                        "sd_request_duration_ns_bucket{{{labels},le=\"{upper}\"}} {cum}"
                    );
                }
                let _ = writeln!(
                    out,
                    "sd_request_duration_ns_bucket{{{labels},le=\"+Inf\"}} {}",
                    cum
                );
                let _ = writeln!(out, "sd_request_duration_ns_sum{{{labels}}} {}", snap.sum);
                let _ = writeln!(
                    out,
                    "sd_request_duration_ns_count{{{labels}}} {}",
                    snap.count
                );
                for (q, num) in [("0.5", 50u64), ("0.9", 90), ("0.99", 99)] {
                    let _ = writeln!(
                        quantile_lines,
                        "sd_request_duration_quantile_ns{{{labels},quantile=\"{q}\"}} {}",
                        snap.quantile(num, 100)
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "# HELP sd_request_duration_quantile_ns Derived latency quantiles (p50/p90/p99).\n\
             # TYPE sd_request_duration_quantile_ns gauge"
        );
        out.push_str(&quantile_lines);
        let _ = writeln!(
            out,
            "# HELP sd_request_phase_ns_total Cumulative per-phase request time.\n\
             # TYPE sd_request_phase_ns_total counter"
        );
        for m in Method::ALL {
            for p in Phase::ALL {
                let n = self.phases[m.idx()][p.idx()].get();
                if n != 0 {
                    let _ = writeln!(
                        out,
                        "sd_request_phase_ns_total{{method=\"{}\",phase=\"{}\"}} {n}",
                        m.as_str(),
                        p.as_str()
                    );
                }
            }
        }
        for (family, help, values) in [
            (
                "sd_pair_expansions_total",
                "Pair expansions attempted by served searches.",
                &self.pair_expansions,
            ),
            (
                "sd_visited_pairs_total",
                "Distinct canonical state pairs discovered by served searches.",
                &self.visited_pairs,
            ),
            (
                "sd_bfs_levels_total",
                "BFS levels expanded by served searches.",
                &self.bfs_levels,
            ),
            (
                "sd_memo_rows_reused_total",
                "Sparse successor rows served from the memo, per method.",
                &self.rows_reused,
            ),
            (
                "sd_memo_rows_materialized_total",
                "Sparse successor rows interpreted, per method.",
                &self.rows_materialized,
            ),
        ] {
            let _ = writeln!(out, "# HELP {family} {help}\n# TYPE {family} counter");
            for m in Method::ALL {
                let n = values[m.idx()].get();
                if n != 0 {
                    let _ = writeln!(out, "{family}{{method=\"{}\"}} {n}", m.as_str());
                }
            }
        }
        let _ = writeln!(
            out,
            "# HELP sd_engine_runs_total Searches run, by engine kind.\n\
             # TYPE sd_engine_runs_total counter"
        );
        for (i, label) in ENGINES.iter().enumerate() {
            let n = self.engine_runs[i].get();
            if n != 0 {
                let _ = writeln!(out, "sd_engine_runs_total{{engine=\"{label}\"}} {n}");
            }
        }
        for (name, help, v) in [
            (
                "sd_partition_hits_total",
                "Sat(phi) enumerations served from the Oracle intern cache.",
                self.partition_hits.get(),
            ),
            (
                "sd_partition_misses_total",
                "Sat(phi) enumerations computed fresh.",
                self.partition_misses.get(),
            ),
            (
                "sd_compiles_total",
                "Successor-table compiles.",
                self.compiles.get(),
            ),
            (
                "sd_compile_ns_total",
                "Nanoseconds spent compiling successor tables.",
                self.compile_ns.get(),
            ),
            ("sd_cache_hits_total", "Result-cache hits.", g.cache.hits),
            (
                "sd_cache_misses_total",
                "Result-cache misses.",
                g.cache.misses,
            ),
            (
                "sd_cache_insertions_total",
                "Result-cache insertions.",
                g.cache.insertions,
            ),
            (
                "sd_cache_evictions_total",
                "Result-cache evictions.",
                g.cache.evictions,
            ),
            (
                "sd_connections_total",
                "TCP connections accepted.",
                g.connections_total,
            ),
            (
                "sd_access_log_dropped_total",
                "Access-log lines dropped instead of blocking requests.",
                self.access_dropped.get(),
            ),
            (
                "sd_slow_queries_total",
                "Requests slower than the slow-query threshold.",
                self.slow.captured.get(),
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, help, v) in [
            ("sd_uptime_seconds", "Seconds since start.", self.uptime_s()),
            (
                "sd_connections_open",
                "Currently open connections.",
                g.connections_open,
            ),
            (
                "sd_inflight_queries",
                "Queries executing in the worker pool.",
                g.inflight,
            ),
            (
                "sd_queue_depth",
                "Jobs waiting in the admission queue.",
                g.queue_depth,
            ),
            ("sd_workers", "Worker pool size.", g.workers),
            (
                "sd_workers_busy",
                "Workers currently executing a query.",
                g.inflight,
            ),
            ("sd_cache_entries", "Result-cache entries.", g.cache.entries),
            (
                "sd_cache_capacity",
                "Result-cache capacity.",
                g.cache.capacity,
            ),
            (
                "sd_registry_systems",
                "Registered systems.",
                g.registry_systems,
            ),
            ("sd_registry_capacity", "Registry capacity.", g.registry_cap),
            (
                "sd_slowlog_capacity",
                "Slow-query ring capacity.",
                self.slow.cap as u64,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        out
    }
}

/// Scrape-time gauge values owned by the server loop rather than the
/// metrics registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScrapeGauges {
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Currently open connections.
    pub connections_open: u64,
    /// Queries executing right now.
    pub inflight: u64,
    /// Jobs waiting in the admission queue.
    pub queue_depth: u64,
    /// Worker pool size.
    pub workers: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Registered systems.
    pub registry_systems: u64,
    /// Registry capacity.
    pub registry_cap: u64,
}

/// A [`Sink`] that rolls Oracle telemetry into server metric families
/// and forwards every event to an optional inner sink (`--telemetry`).
pub struct MetricsSink {
    metrics: Arc<ServerMetrics>,
    inner: Option<Arc<dyn Sink>>,
}

impl MetricsSink {
    /// Wraps `metrics`, chaining to `inner` when present.
    pub fn new(metrics: Arc<ServerMetrics>, inner: Option<Arc<dyn Sink>>) -> MetricsSink {
        MetricsSink { metrics, inner }
    }
}

impl Sink for MetricsSink {
    fn record(&self, event: &QueryEvent) {
        match *event {
            QueryEvent::CompileFinish { wall_ns, .. } => {
                self.metrics.compiles.inc();
                self.metrics.compile_ns.add(wall_ns);
            }
            QueryEvent::PartitionHit { .. } => self.metrics.partition_hits.inc(),
            QueryEvent::PartitionMiss { .. } => self.metrics.partition_misses.inc(),
            QueryEvent::MemoRows {
                reused,
                materialized,
            } => {
                self.metrics.memo_rows_reused.add(reused);
                self.metrics.memo_rows_materialized.add(materialized);
            }
            _ => {}
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_rolls_up_counters_histograms_and_phases() {
        let m = ServerMetrics::new(true, 1_000_000, 8); // slow_ms huge: nothing slow
        let mut trace = RequestTrace::start();
        trace.add(Phase::Parse, 100);
        trace.add(Phase::Search, 5_000);
        let report = QueryReport {
            engine: "compiled-dense",
            wall_ns: 5_000,
            visited_pairs: 10,
            pair_expansions: 40,
            levels: 3,
            partition_cached: false,
            fresh_compile: false,
            rows_reused: 0,
            rows_materialized: 0,
        };
        let obs = RequestObs {
            method: Method::Depends,
            cold: true,
            report: Some(&report),
            ..RequestObs::default()
        };
        assert!(m.observe_request(&obs, &trace).is_none());
        assert_eq!(m.requests_total(Method::Depends, None), 1);
        assert_eq!(m.duration_snapshot(Method::Depends, true).count, 1);
        assert_eq!(m.duration_snapshot(Method::Depends, false).count, 0);
        assert_eq!(m.pair_expansions[Method::Depends.idx()].get(), 40);
        assert_eq!(m.engine_runs[1].get(), 1);
    }

    #[test]
    fn slow_threshold_zero_captures_everything_with_full_phases() {
        let m = ServerMetrics::new(true, 0, 4);
        let trace = RequestTrace::start();
        let obs = RequestObs {
            method: Method::Ping,
            id: Some(7),
            ..RequestObs::default()
        };
        let line = m.observe_request(&obs, &trace).expect("slow line");
        assert!(line.contains(r#""event":"slow_query""#), "{line}");
        for p in Phase::ALL {
            assert!(line.contains(&format!(r#""{}":"#, p.as_str())), "{line}");
        }
        let tail = m.slowlog_tail(10);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, Some(7));
    }

    #[test]
    fn slowlog_ring_keeps_the_most_recent() {
        let m = ServerMetrics::new(true, 0, 2);
        for i in 0..5 {
            let obs = RequestObs {
                method: Method::Ping,
                id: Some(i),
                ..RequestObs::default()
            };
            m.observe_request(&obs, &RequestTrace::start());
        }
        let tail = m.slowlog_tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].id, Some(3));
        assert_eq!(tail[1].id, Some(4));
        assert_eq!(tail[1].seq, 4);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = ServerMetrics::new(false, 0, 4);
        let obs = RequestObs::default();
        assert!(m.observe_request(&obs, &RequestTrace::start()).is_none());
        assert_eq!(m.requests_total(Method::Unknown, None), 0);
        assert!(m.slowlog_tail(10).is_empty());
    }

    #[test]
    fn prom_exposition_has_families_and_cumulative_buckets() {
        let m = ServerMetrics::new(true, 1_000_000, 8);
        let mut trace = RequestTrace::start();
        trace.add(Phase::Write, 10);
        for _ in 0..3 {
            let obs = RequestObs {
                method: Method::Sinks,
                cold: false,
                ..RequestObs::default()
            };
            m.observe_request(&obs, &trace);
        }
        let g = ScrapeGauges {
            connections_total: 2,
            workers: 4,
            ..ScrapeGauges::default()
        };
        let prom = m.render_prom(&g);
        assert!(prom.contains("# TYPE sd_requests_total counter"), "{prom}");
        assert!(
            prom.contains(r#"sd_requests_total{method="sinks",outcome="ok"} 3"#),
            "{prom}"
        );
        assert!(prom.contains(r#"cold="false",le="+Inf"} 3"#), "{prom}");
        assert!(prom.contains("sd_request_duration_quantile_ns{"), "{prom}");
        assert!(prom.contains("sd_workers 4"), "{prom}");
        // Every line is either a comment or `name{labels} value`.
        for line in prom.lines() {
            assert!(line.starts_with('#') || line.starts_with("sd_"), "{line}");
        }
    }

    #[test]
    fn metrics_sink_rolls_up_compile_and_partition_events() {
        let m = Arc::new(ServerMetrics::new(true, 1_000_000, 8));
        let sink = MetricsSink::new(Arc::clone(&m), None);
        sink.record(&QueryEvent::CompileFinish {
            kind: "compiled-dense",
            wall_ns: 1234,
        });
        sink.record(&QueryEvent::PartitionMiss { states: 4 });
        sink.record(&QueryEvent::PartitionHit { states: 4 });
        sink.record(&QueryEvent::MemoRows {
            reused: 5,
            materialized: 2,
        });
        assert_eq!(m.compiles.get(), 1);
        assert_eq!(m.compile_ns.get(), 1234);
        assert_eq!(m.partition_hits.get(), 1);
        assert_eq!(m.partition_misses.get(), 1);
        assert_eq!(m.memo_rows_reused.get(), 5);
        assert_eq!(m.memo_rows_materialized.get(), 2);
    }
}
