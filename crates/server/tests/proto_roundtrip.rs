//! Protocol robustness: property-based round-trips of the wire frames.
//!
//! Every request the client encoder can produce must parse back to the
//! same frame — across arbitrary object names (including quotes,
//! backslashes, controls and non-ASCII, exercising the workspace's
//! single JSON escaper end to end) — and error responses must preserve
//! their machine-readable kind.

use proptest::prelude::*;
use sd_server::proto::{
    self, encode_error, encode_frame, encode_query_ok, parse_frame, parse_response, ErrorKind,
    Frame, QueryKind, QueryReq, Request, SystemDesc, WireError,
};

fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x2000, 0..10).prop_map(|cps| {
        cps.into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{fffd}'))
            .collect()
    })
}

fn arb_names() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(arb_name(), 0..4)
}

fn arb_desc() -> impl Strategy<Value = SystemDesc> {
    prop_oneof![
        (arb_name(), prop::collection::vec(-8i64..8, 0..3))
            .prop_map(|(name, params)| SystemDesc::Example { name, params }),
        arb_name().prop_map(|source| SystemDesc::Program { source }),
    ]
}

fn arb_query() -> impl Strategy<Value = QueryReq> {
    (
        0u64..u64::MAX,
        0u32..3,
        arb_names(),
        arb_name(),
        (0u32..2, arb_name()),
        (0u32..2, 0u64..1000),
        (0u32..2, 0u64..100_000),
    )
        .prop_map(
            |(system, kind, a, phi, (has_beta, beta), (has_bound, bound), (has_mp, mp))| {
                let kind = match kind {
                    0 => QueryKind::Depends,
                    1 => QueryKind::Sinks,
                    _ => QueryKind::SinksMatrix,
                };
                let mut q = QueryReq::sinks(system, a);
                q.kind = kind;
                if !phi.is_empty() {
                    q.phi = Some(phi);
                }
                match kind {
                    QueryKind::Depends => {
                        if has_beta == 1 {
                            q.beta = Some(beta);
                        } else {
                            q.set = vec![beta];
                        }
                        if has_bound == 1 {
                            q.bound = Some(bound as usize);
                        }
                    }
                    QueryKind::SinksMatrix => {
                        q.a = Vec::new();
                        q.sources = vec![vec![beta], Vec::new()];
                    }
                    QueryKind::Sinks => {}
                }
                if has_mp == 1 {
                    q.max_pairs = Some(mp);
                    q.timeout_ms = Some(mp / 7 + 1);
                }
                q
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Shutdown),
        (0u32..2).prop_map(|prom| Request::Metrics { prom: prom == 1 }),
        (0u32..2, 0u64..100_000).prop_map(|(has, n)| Request::SlowLog {
            limit: (has == 1).then_some(n)
        }),
        arb_desc().prop_map(Request::Register),
        arb_query().prop_map(Request::Query),
    ]
}

proptest! {
    #[test]
    fn request_frames_round_trip(req in arb_request(), id in 0u64..1_000_000, has_id in 0u32..2) {
        let frame = Frame { id: (has_id == 1).then_some(id), req };
        let line = encode_frame(&frame);
        let back = parse_frame(&line);
        prop_assert_eq!(back.as_ref().ok(), Some(&frame), "line: {}", line);
    }

    #[test]
    fn error_responses_round_trip(kind in 0u32..11, msg in arb_name(), id in 0u64..1000) {
        let kinds = [
            ErrorKind::Parse, ErrorKind::Protocol, ErrorKind::TooLarge,
            ErrorKind::UnknownMethod, ErrorKind::UnknownSystem, ErrorKind::Invalid,
            ErrorKind::Timeout, ErrorKind::Budget, ErrorKind::Overloaded,
            ErrorKind::ShuttingDown, ErrorKind::Internal,
        ];
        let err = WireError::new(kinds[kind as usize], msg.clone());
        let line = encode_error(Some(id), &err);
        let resp = parse_response(&line).unwrap();
        prop_assert!(!resp.ok);
        let got = resp.error.unwrap();
        prop_assert_eq!(got.kind, kinds[kind as usize]);
        prop_assert_eq!(got.message, msg);
    }

    #[test]
    fn answer_bytes_survive_the_envelope(names in arb_names(), id in 0u64..1000, cached in 0u32..2) {
        // A synthetic sinks answer with hostile object names: the raw
        // answer value spliced into the envelope must come back out
        // byte-for-byte.
        let mut j = sd_core::JsonBuf::new();
        j.begin_obj().str_field("type", "sinks");
        j.begin_arr_field("objects");
        for n in &names {
            j.str_elem(n);
        }
        j.end_arr().end_obj();
        let answer = j.finish();
        let line = encode_query_ok(Some(id), &answer, cached == 1, None);
        let resp = parse_response(&line).unwrap();
        prop_assert_eq!(resp.answer_raw.as_deref(), Some(answer.as_str()));
        prop_assert_eq!(resp.cached, cached == 1);
    }

    #[test]
    fn parser_never_panics_on_mutations(req in arb_request(), cut in 0usize..200, flip in 0usize..200) {
        // Truncations and byte flips of valid frames must fail (or
        // succeed) gracefully — never panic.
        let frame = Frame { id: Some(1), req };
        let line = encode_frame(&frame);
        let cut = cut.min(line.len());
        let mut truncated = line.clone();
        while !truncated.is_char_boundary(cut) && !truncated.is_empty() {
            truncated.pop();
        }
        if truncated.is_char_boundary(cut) {
            truncated.truncate(cut);
        }
        let _ = parse_frame(&truncated);
        let mut bytes = line.into_bytes();
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] = bytes[i].wrapping_add(1);
        }
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = parse_frame(&s);
        }
    }
}

#[test]
fn malformed_frame_catalogue() {
    let cases: &[(&str, ErrorKind)] = &[
        ("{", ErrorKind::Parse),
        ("nonsense", ErrorKind::Parse),
        ("[]", ErrorKind::Protocol),
        ("123", ErrorKind::Protocol),
        (r#"{"id":"x","method":"ping"}"#, ErrorKind::Protocol),
        (r#"{"method":"warp"}"#, ErrorKind::UnknownMethod),
        (r#"{"method":"register"}"#, ErrorKind::Protocol),
        (
            r#"{"method":"register","example":"a","program":"b"}"#,
            ErrorKind::Protocol,
        ),
        (r#"{"method":"depends","system":"x"}"#, ErrorKind::Protocol),
        (
            r#"{"method":"sinks","system":1,"a":"alpha"}"#,
            ErrorKind::Protocol,
        ),
        (
            r#"{"method":"sinks","system":1,"a":[1]}"#,
            ErrorKind::Protocol,
        ),
        (
            r#"{"method":"sinks","system":1,"timeout_ms":-5}"#,
            ErrorKind::Protocol,
        ),
        (
            r#"{"method":"metrics","format":"xml"}"#,
            ErrorKind::Protocol,
        ),
        (r#"{"method":"slowlog","limit":-3}"#, ErrorKind::Protocol),
        (r#"{"method":"slowlog","limit":"all"}"#, ErrorKind::Protocol),
    ];
    for (line, want) in cases {
        let got = parse_frame(line).expect_err(line).kind;
        assert_eq!(got, *want, "frame {line:?}");
    }
}

#[test]
fn oversized_frame_is_rejected_without_parsing() {
    let line = format!(
        r#"{{"method":"ping","pad":"{}"}}"#,
        "y".repeat(proto::MAX_FRAME)
    );
    assert_eq!(parse_frame(&line).unwrap_err().kind, ErrorKind::TooLarge);
}
