//! Deterministic metrics correctness: a known request mix against a
//! live server must produce exact counter values, exact histogram
//! counts, and a slow-query ring entry with a complete phase breakdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use sd_core::CompileBudget;
use sd_server::{Client, Config, ErrorKind, Json, Method, QueryReq, ServeHandle, SystemDesc};

fn spawn() -> ServeHandle {
    let cfg = Config {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        registry_cap: 8,
        cache_cap: 64,
        max_frame: 4096,
        max_timeout: Duration::from_secs(10),
        budget: CompileBudget::default(),
        sink: None,
        access_log: None,
        // Threshold 0: every request is "slow", so the ring must hold
        // the whole mix and the timeout entry is guaranteed captured.
        slow_ms: 0,
        slowlog_cap: 32,
        metrics: true,
    };
    ServeHandle::spawn(cfg).expect("bind loopback")
}

fn u64_at(v: &Json, path: &[&str]) -> Option<u64> {
    let mut v = v;
    for k in path {
        v = v.get(k)?;
    }
    v.as_u64()
}

/// The ISSUE's acceptance mix: 1 register, 1 cold depends, 2 warm
/// repeats, 1 malformed frame, 1 timeout — then assert the families.
#[test]
fn known_mix_produces_exact_counters_histograms_and_slowlog() {
    let handle = spawn();
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();

    // 1 register (cold: compiles fresh).
    let key = c
        .register(SystemDesc::Example {
            name: "flag_copy".into(),
            params: vec![3],
        })
        .unwrap();

    // 1 cold depends + 2 warm byte-identical repeats.
    let req = QueryReq::depends(key, vec!["alpha".into()], "beta");
    for (i, want_cached) in [(0, false), (1, true), (2, true)] {
        let resp = c.query(req.clone()).unwrap();
        assert_eq!(resp.cached, want_cached, "repeat {i}");
    }

    // 1 timeout: deadline expired before the search starts; a distinct
    // source set keeps it off the cached fingerprint.
    let mut doomed = QueryReq::depends(key, vec!["x".into()], "beta");
    doomed.timeout_ms = Some(0);
    let err = c.query(doomed).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Timeout);

    // 1 malformed frame on a raw connection; the trailing ping-pong on
    // the same connection guarantees the frame's metrics were folded in
    // before we scrape.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(writer, "this is not json").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains(r#""kind":"parse""#), "{resp}");
        writeln!(writer, r#"{{"method":"ping"}}"#).unwrap();
        resp.clear();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains(r#""pong":true"#), "{resp}");
    }
    // The ping's own observation races with the scrape below (its
    // response is written before its metrics land); give it a moment.
    std::thread::sleep(Duration::from_millis(50));

    // Exact counters, in-process.
    let m = handle.metrics();
    assert_eq!(m.requests_total(Method::Register, None), 1);
    assert_eq!(m.requests_total(Method::Depends, None), 3);
    assert_eq!(
        m.requests_total(Method::Depends, Some(ErrorKind::Timeout)),
        1
    );
    assert_eq!(m.requests_total(Method::Unknown, Some(ErrorKind::Parse)), 1);

    // Exact histogram counts: 1 cold search, 2 cached replays. Errors
    // (the timeout) record no duration sample.
    let cold = m.duration_snapshot(Method::Depends, true);
    let warm = m.duration_snapshot(Method::Depends, false);
    assert_eq!(cold.count, 1);
    assert_eq!(warm.count, 2);
    assert_eq!(cold.buckets.iter().map(|(_, n)| n).sum::<u64>(), 1);
    assert_eq!(warm.buckets.iter().map(|(_, n)| n).sum::<u64>(), 2);
    let reg = m.duration_snapshot(Method::Register, true);
    assert_eq!(reg.count, 1, "fresh registration is a cold sample");

    // The same numbers over the wire, as structured JSON.
    let scraped = c.metrics().unwrap();
    assert_eq!(u64_at(&scraped, &["requests", "register", "ok"]), Some(1));
    assert_eq!(u64_at(&scraped, &["requests", "depends", "ok"]), Some(3));
    assert_eq!(
        u64_at(&scraped, &["requests", "depends", "timeout"]),
        Some(1)
    );
    assert_eq!(u64_at(&scraped, &["requests", "unknown", "parse"]), Some(1));
    assert_eq!(
        u64_at(&scraped, &["durations", "depends", "cold", "count"]),
        Some(1)
    );
    assert_eq!(
        u64_at(&scraped, &["durations", "depends", "warm", "count"]),
        Some(2)
    );
    assert_eq!(u64_at(&scraped, &["cache", "hits"]), Some(2));
    assert_eq!(u64_at(&scraped, &["registry", "systems"]), Some(1));
    assert_eq!(u64_at(&scraped, &["oracle", "compiles"]), Some(1));
    assert!(u64_at(&scraped, &["durations", "depends", "cold", "p50_ns"]).unwrap() > 0);

    // The slow ring (threshold 0) captured the timeout with all six
    // phases present, and phases that ran are nonzero.
    let slow = c.slowlog(None).unwrap();
    let timeout_entry = slow
        .iter()
        .find(|e| e.get("outcome").and_then(Json::as_str) == Some("timeout"))
        .expect("timeout captured in slowlog");
    assert_eq!(
        timeout_entry.get("method").and_then(Json::as_str),
        Some("depends")
    );
    let phases = timeout_entry.get("phases").expect("phase breakdown");
    for p in ["parse", "cache", "compile", "search", "serialize", "write"] {
        assert!(
            phases.get(p).and_then(Json::as_u64).is_some(),
            "phase `{p}` missing: {phases:?}"
        );
    }
    assert!(u64_at(timeout_entry, &["phases", "parse"]).unwrap() > 0);
    assert!(u64_at(timeout_entry, &["total_ns"]).unwrap() > 0);

    // And the Prometheus exposition agrees.
    let prom = c.metrics_prom().unwrap();
    for needle in [
        r#"sd_requests_total{method="depends",outcome="ok"} 3"#,
        r#"sd_requests_total{method="depends",outcome="timeout"} 1"#,
        r#"sd_requests_total{method="unknown",outcome="parse"} 1"#,
        r#"sd_request_duration_ns_count{method="depends",cold="false"} 2"#,
        r#"sd_request_duration_ns_count{method="depends",cold="true"} 1"#,
        "sd_cache_hits_total 2",
        "sd_compiles_total 1",
        "sd_registry_systems 1",
        "sd_slow_queries_total",
        "# TYPE sd_request_duration_ns histogram",
    ] {
        assert!(prom.contains(needle), "missing `{needle}` in:\n{prom}");
    }
    handle.shutdown();
}

/// With the default threshold (100ms) nothing in a fast mix is slow;
/// with metrics disabled nothing records at all.
#[test]
fn thresholds_and_disabled_metrics_behave() {
    // Default threshold: fast requests leave the ring empty.
    let handle = ServeHandle::spawn(Config {
        addr: "127.0.0.1:0".into(),
        ..Config::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.ping().unwrap();
    assert!(c.slowlog(None).unwrap().is_empty());
    assert_eq!(handle.metrics().requests_total(Method::Ping, None), 1);
    handle.shutdown();

    // Disabled: scrapes succeed but report nothing.
    let handle = ServeHandle::spawn(Config {
        addr: "127.0.0.1:0".into(),
        metrics: false,
        slow_ms: 0,
        ..Config::default()
    })
    .unwrap();
    let mut c = Client::connect(handle.local_addr()).unwrap();
    c.ping().unwrap();
    c.ping().unwrap();
    let m = c.metrics().unwrap();
    assert_eq!(u64_at(&m, &["requests", "ping", "ok"]), None);
    assert!(c.slowlog(None).unwrap().is_empty());
    assert_eq!(handle.metrics().requests_total(Method::Ping, None), 0);
    handle.shutdown();
}
