//! End-to-end tests over real TCP connections: compile-once sharing,
//! byte-identical cache replays, structured limit errors with
//! undisturbed neighbours, malformed-frame recovery, and graceful
//! draining shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use sd_core::{examples, CompileBudget, ObjSet, Query, QueryEvent, RecordingSink};
use sd_server::proto;
use sd_server::{Client, Config, ErrorKind, QueryReq, ServeHandle, SystemDesc};

fn spawn(sink: Option<Arc<RecordingSink>>) -> ServeHandle {
    let cfg = Config {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        registry_cap: 8,
        cache_cap: 64,
        max_frame: 4096,
        max_timeout: Duration::from_secs(10),
        budget: CompileBudget::default(),
        sink: sink.map(|s| s as Arc<dyn sd_core::Sink>),
        access_log: None,
        ..Config::default()
    };
    ServeHandle::spawn(cfg).expect("bind loopback")
}

fn flag_copy_desc() -> SystemDesc {
    SystemDesc::Example {
        name: "flag_copy".into(),
        params: vec![3],
    }
}

/// The PR's acceptance scenario: two concurrent clients register the
/// same system and issue the same `sinks_matrix` query. The system
/// compiles exactly once (asserted via telemetry), the second response
/// is a result-cache hit, and both answers are byte-identical to the
/// in-process `Query` answer.
#[test]
fn concurrent_clients_compile_once_and_share_the_cache() {
    let sink = Arc::new(RecordingSink::new());
    let handle = spawn(Some(Arc::clone(&sink)));
    let addr = handle.local_addr();

    // Concurrent registration of the same content.
    let keys: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    c.register(flag_copy_desc()).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(keys[0], keys[1], "same content, same registry key");
    assert_eq!(
        sink.count(|e| matches!(e, QueryEvent::CompileFinish { .. })),
        1,
        "registry must compile the system exactly once"
    );

    let sources = vec![vec!["alpha".to_string()], vec!["flag".to_string()]];
    let mut req = QueryReq::matrix(keys[0], sources.clone());
    req.phi = Some("flag".into());

    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    let (r1, _) = c1.call_raw(sd_server::Request::Query(req.clone())).unwrap();
    let (r2, _) = c2.call_raw(sd_server::Request::Query(req.clone())).unwrap();
    assert!(r1.ok && r2.ok);
    assert!(!r1.cached, "first run is a miss");
    assert!(r2.cached, "identical repeat must hit the result cache");
    assert_eq!(
        r1.answer_raw, r2.answer_raw,
        "cache replay must be byte-identical"
    );
    assert!(sink.count(|e| matches!(e, QueryEvent::ResultCacheHit { .. })) >= 1);
    assert!(sink.count(|e| matches!(e, QueryEvent::ResultCacheMiss { .. })) >= 1);

    // Byte-identical to the in-process library answer.
    let sys = examples::flag_copy_system(3).unwrap();
    let u = sys.universe();
    let srcs: Vec<ObjSet> = sources
        .iter()
        .map(|row| ObjSet::from_iter(row.iter().map(|n| u.obj(n).unwrap())))
        .collect();
    let phi = sd_lang::lower_phi(u, "flag").unwrap();
    let outcome = Query::matrix(phi, srcs).run_on(&sys).unwrap();
    let expected = proto::encode_answer(&sys, &outcome);
    assert_eq!(r1.answer_raw.as_deref(), Some(expected.as_str()));

    assert_eq!(handle.cache_stats().hits, 1);
    handle.shutdown();
}

/// Robustness: a request with an unsatisfiable deadline (and one with a
/// zero pair budget) gets a structured `timeout`/`budget` error while a
/// concurrent in-flight request completes normally.
#[test]
fn limit_errors_are_structured_and_do_not_disturb_neighbours() {
    let handle = spawn(None);
    let addr = handle.local_addr();
    let mut c = Client::connect(addr).unwrap();
    let key = c.register(flag_copy_desc()).unwrap();

    let normal = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        (0..20)
            .map(|_| {
                let req = QueryReq::sinks(key, vec!["alpha".into()]);
                c.sinks(req).expect("normal query must keep completing")
            })
            .count()
    });

    // Deadline already expired when the search starts.
    let mut doomed = QueryReq::depends(key, vec!["x".into()], "beta");
    doomed.timeout_ms = Some(0);
    let err = c.query(doomed).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Timeout);

    // Budget of zero pairs: exhausted at the first non-goal discovery.
    let mut broke = QueryReq::depends(key, vec!["flag".into()], "beta");
    broke.max_pairs = Some(0);
    let err = c.query(broke).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Budget);

    assert_eq!(normal.join().unwrap(), 20);

    // The failed queries were not cached: the same query without
    // limits must now succeed.
    let fixed = QueryReq::depends(key, vec!["x".into()], "beta");
    assert!(c.depends(fixed).is_ok());
    handle.shutdown();
}

/// Malformed frames — bad JSON, unknown methods, oversized lines,
/// unknown systems — each get an error response and the connection
/// stays usable for the next request.
#[test]
fn malformed_frames_keep_the_connection_usable() {
    let handle = spawn(None);
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: &str| -> String {
        writeln!(writer, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };

    for (line, kind) in [
        ("this is not json", "parse"),
        (r#"{"method":"teleport"}"#, "unknown_method"),
        (r#"{"method":"sinks"}"#, "protocol"),
        (
            r#"{"method":"sinks","system":424242,"a":["alpha"]}"#,
            "unknown_system",
        ),
    ] {
        let resp = roundtrip(line);
        assert!(resp.contains(r#""ok":false"#), "{resp}");
        assert!(resp.contains(&format!(r#""kind":"{kind}""#)), "{resp}");
    }

    // Oversized frame (max_frame is 4096 in the test config).
    let big = format!(r#"{{"method":"ping","pad":"{}"}}"#, "z".repeat(8192));
    let resp = roundtrip(&big);
    assert!(resp.contains(r#""kind":"too_large""#), "{resp}");

    // The connection still works.
    let resp = roundtrip(r#"{"id":7,"method":"ping"}"#);
    assert!(resp.contains(r#""ok":true"#), "{resp}");
    assert!(resp.contains(r#""id":7"#), "{resp}");
    handle.shutdown();
}

/// Graceful shutdown: a `shutdown` request drains in-flight work; open
/// connections get structured `shutting_down` errors for new queries;
/// the server threads all exit.
#[test]
fn shutdown_drains_and_refuses_new_work() {
    let handle = spawn(None);
    let addr = handle.local_addr();
    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    let key = c1.register(flag_copy_desc()).unwrap();
    assert!(c1.sinks(QueryReq::sinks(key, vec!["alpha".into()])).is_ok());

    c1.shutdown().unwrap();
    let err = c2
        .query(QueryReq::sinks(key, vec!["flag".into()]))
        .unwrap_err();
    assert_eq!(err.kind, ErrorKind::ShuttingDown);

    // All pool/accept threads exit.
    handle.wait();
}

/// `stats` surfaces cache hit/miss counters and the registered systems.
#[test]
fn stats_surface_cache_counters_and_registry() {
    let handle = spawn(None);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let key = c.register(flag_copy_desc()).unwrap();
    let req = QueryReq::sinks(key, vec!["alpha".into()]);
    c.sinks(req.clone()).unwrap();
    c.sinks(req).unwrap();
    let stats = c.stats().unwrap();
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
    let systems = stats.get("systems").unwrap().as_arr().unwrap();
    assert_eq!(systems.len(), 1);
    assert_eq!(systems[0].get("system").unwrap().as_u64(), Some(key));
    handle.shutdown();
}

/// Registering via a mini-language program and querying it end to end.
#[test]
fn program_registration_round_trips() {
    let handle = spawn(None);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let key = c
        .register(SystemDesc::Program {
            source: "var x: bool; var y: bool;\ny := x;".into(),
        })
        .unwrap();
    let req = QueryReq::depends(key, vec!["x".into()], "y");
    assert!(c.depends(req).unwrap(), "y := x transmits x");
    let req = QueryReq::depends(key, vec!["y".into()], "x");
    assert!(!c.depends(req).unwrap(), "no flow back into x");
    handle.shutdown();
}

/// The φ in a served query actually constrains the search: same system,
/// φ pins the guard, the flow disappears. Also checks Phi::True and the
/// textual φ produce distinct cache entries.
#[test]
fn phi_text_constrains_served_queries() {
    let handle = spawn(None);
    let mut c = Client::connect(handle.local_addr()).unwrap();
    let key = c
        .register(SystemDesc::Example {
            name: "guarded_copy".into(),
            params: vec![2],
        })
        .unwrap();
    let open = QueryReq::depends(key, vec!["alpha".into()], "beta");
    assert!(c.depends(open).unwrap());
    let mut pinned = QueryReq::depends(key, vec!["alpha".into()], "beta");
    pinned.phi = Some("!m".into());
    assert!(!c.depends(pinned).unwrap());
    assert_eq!(handle.cache_stats().hits, 0, "distinct φ, distinct keys");
    handle.shutdown();
}
