//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: one calibration call picks an iteration count
//! aiming at ~40 ms per sample (slow benchmarks degrade gracefully to a
//! single iteration and fewer samples), then the configured number of
//! samples is timed and the per-iteration mean of the *best* sample is
//! reported — a simple but robust lower-bound estimator.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point; collects groups of benchmarks.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// Identifier for a single benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            max_samples: self.sample_size,
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        routine(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| routine(b))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    max_samples: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, choosing iteration and sample counts from one
    /// calibration call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(40);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let samples = if once > Duration::from_secs(1) {
            1
        } else if once > Duration::from_millis(100) {
            2.min(self.max_samples)
        } else {
            self.max_samples.min(10)
        };

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        let Some(best) = self.samples.iter().min() else {
            println!("{group}/{id}: no samples recorded");
            return;
        };
        let per_iter = best.as_secs_f64() / self.iters_per_sample as f64;
        println!(
            "{group}/{id}: {} per iter ({} iters x {} samples)",
            format_seconds(per_iter),
            self.iters_per_sample,
            self.samples.len()
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter("inc"), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x + 1
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn format_spans_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" us"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
