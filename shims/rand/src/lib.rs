//! Minimal, deterministic, offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small subset of the `rand 0.8` API that
//! the code actually uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, and `Rng::gen_bool`. The generator is
//! SplitMix64 — statistically solid for test-case and workload
//! generation, and *not* a cryptographic generator (nothing here relies
//! on one).

#![forbid(unsafe_code)]

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (taken from the high half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on empty ranges, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        // 53 random bits mapped to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range-sampling machinery mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Uniform sampling over ranges.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),* $(,)?) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let lo = self.start as i128;
                        let span = (self.end as i128 - lo) as u128;
                        let v = rng.next_u64() as u128 % span;
                        (lo + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (s, e) = (*self.start(), *self.end());
                        assert!(s <= e, "empty inclusive range in gen_range");
                        let lo = s as i128;
                        let span = (e as i128 - lo) as u128 + 1;
                        let v = rng.next_u64() as u128 % span;
                        (lo + v as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    }
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Scramble so that nearby seeds give unrelated streams.
            StdRng {
                state: seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}/1000");
    }
}
