//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest API its test suites use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, [`strategy::Just`], weighted unions via [`prop_oneof!`],
//! `prop::collection::vec`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Semantics: each property runs `ProptestConfig::cases` times on inputs
//! drawn from a deterministic per-test seed (derived from the test's
//! module path and name), and the first failing case panics with its
//! case number. There is **no shrinking** — a deliberate simplification;
//! failures are still reproducible because generation is deterministic.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration, failure type, and the deterministic RNG
    //! driving generation.

    /// Per-property configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    /// Deterministic SplitMix64 generator used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator from an explicit seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed
                    .wrapping_mul(0x2545_F491_4F6C_DD1D)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// A generator seeded from a test's fully qualified name, so
        /// every test gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, builds a dependent strategy from it, and
        /// samples that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Recursive strategies: `self` is the leaf case and `recurse`
        /// builds one level on top of an inner strategy. `_desired_size`
        /// and `_expected_branch` are accepted for API compatibility;
        /// recursion depth is bounded by `depth`.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies; the expansion of
    /// [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty inclusive range strategy");
                    let lo = s as i128;
                    let span = (e as i128 - lo) as u128 + 1;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo + v as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec(..)` works.
    pub use crate as prop;
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e.0
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        let s = prop::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_respects_zero_weight_paths() {
        let mut rng = crate::test_runner::TestRng::new(2);
        let s = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut saw = [0u32; 3];
        for _ in 0..400 {
            saw[s.generate(&mut rng) as usize - 1] += 1;
        }
        assert!(saw[0] > 0 && saw[1] > saw[0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(x in 0i64..50, v in prop::collection::vec(0u32..4, 0..6)) {
            prop_assert!((0..50).contains(&x));
            prop_assert_eq!(v.len(), v.iter().map(|_| 1usize).sum::<usize>());
        }
    }
}
