//! The §4.3 pointer-chain example: Strong Dependency Induction proves a
//! reachability-style isolation property.
//!
//! Objects hold `(data, ptr)` records; operations copy data along
//! pointers (`δ1`) and advance pointers (`δ2`). If no chain of pointers
//! leads from β back to α, no information can ever be transmitted from α
//! to β — proved by Corollary 4-3 with `q(x, y) = Chain(x) ⊃ Chain(y)`.
//!
//! Run with `cargo run --example pointer_chains --release`.

use strong_dependency::core::{examples, induction, ObjId, ObjSet, Phi, Query, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let sys = examples::pointer_chain_system(n, 2)?;
    let u = sys.universe();
    println!("{sys}");

    // Chain = {o0}: α is o0 and must stay unreachable from outside.
    let alpha = u.obj("o0")?;
    let beta = u.obj(&format!("o{}", n - 1))?;
    let chain = ObjSet::singleton(alpha);

    // φ: every object whose pointer lands in Chain is itself in Chain —
    // the §4.3 invariant "Chain(σ.y.ptr) ⊃ Chain(y)".
    let chain_phi = chain.clone();
    let phi = Phi::pred("chain-closed", move |sys, sigma| {
        let u = sys.universe();
        for y in u.objects() {
            let target = match sigma.value(u, y) {
                Value::Record(fields) => fields[1].as_name().expect("ptr field"),
                _ => unreachable!("pointer objects are records"),
            };
            if chain_phi.contains(target) && !chain_phi.contains(y) {
                return Ok(false);
            }
        }
        Ok(true)
    });
    println!(
        "φ admits {} of {} states",
        phi.sat(&sys)?.count(),
        sys.state_count()?
    );

    // The induction proof (Cor 4-3): autonomy + invariance + per-operation
    // respect of q imply every dependency respects q.
    let chain_q = chain.clone();
    let q = move |x: ObjId, y: ObjId| !chain_q.contains(x) || chain_q.contains(y);
    let outcome = induction::prove_cor_4_3(&sys, &phi, &q, "Chain(x) ⊃ Chain(y)")?;
    match outcome.certificate() {
        Some(cert) => println!("\n{cert}"),
        None => println!("induction failed: {:?}", outcome.reason()),
    }

    // Cross-check with the exact oracle.
    let exact = Query::new(phi.clone(), ObjSet::singleton(alpha))
        .beta(beta)
        .run_on(&sys)?
        .into_witness();
    println!("exact pair-reachability: α ▷φ β = {}", exact.is_some());

    // Sanity: without φ, pointers can be re-aimed at α and the flow exists.
    let free = Query::new(Phi::True, ObjSet::singleton(alpha))
        .beta(beta)
        .run_on(&sys)?
        .into_witness();
    match free {
        Some(w) => println!(
            "without φ the flow exists, e.g. over history {} ({} steps)",
            w.history,
            w.history.len()
        ),
        None => println!("without φ: still no flow (unexpected)"),
    }
    Ok(())
}
