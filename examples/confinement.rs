//! The Confinement Problem (§1.1, §3.4, §7.5) on an access-matrix system.
//!
//! A user stores private data in `secret`; `spy` is an output channel the
//! adversary reads. We ask which initial protection states guarantee that
//! nothing about `secret` can ever reach `spy`, compare two solutions with
//! the §3.6 worth measure, and show §7.5-style declassification.
//!
//! Run with `cargo run --example confinement`.

use strong_dependency::core::{worth, Phi};
use strong_dependency::matrix::{
    no_reads_of_confined, no_writes_to_spies, Confinement, MatrixBuilder,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = MatrixBuilder::new()
        .subject("u")
        .file("secret", 2)
        .file("scratch", 2)
        .file("spy", 2)
        .build()?;
    println!("{}", m.system);

    let policy = Confinement::new(&m, &["secret"], &["spy"])?;

    // Unconstrained, the matrix leaks (some initial state grants the
    // rights for secret → spy, possibly via scratch).
    println!(
        "unconstrained matrix solves confinement: {}",
        policy.is_solution(&m, &Phi::True)?
    );

    // Two solutions with different worths.
    let phi_reads = no_reads_of_confined(&m, &["secret"])?;
    let phi_writes = no_writes_to_spies(&m, &["spy"])?;
    for (name, phi) in [
        ("no reads of secret", &phi_reads),
        ("no writes to spy", &phi_writes),
    ] {
        println!(
            "\nφ = {name}: solves confinement = {}",
            policy.is_solution(&m, phi)?
        );
        let w = worth::worth(&m.system, phi)?;
        println!("  worth ({} paths): {}", w.len(), w.display(&m.system));
    }
    println!(
        "\n§3.6 comparison: `no reads of secret` preserves the scratch → spy \
         path that `no writes to spy` destroys — equal protection, more worth."
    );

    // §7.5: declassify the secret; then even the unconstrained matrix is
    // acceptable under the weakened problem.
    let weak = Confinement::new(&m, &["secret"], &["spy"])?.declassify(&m, &["secret"])?;
    println!(
        "\nafter declassifying `secret`: unconstrained matrix acceptable = {}",
        weak.is_solution(&m, &Phi::True)?
    );
    Ok(())
}
