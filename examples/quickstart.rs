//! Quickstart: define a computational system, ask whether information can
//! be transmitted, and find a constraint that stops it.
//!
//! Run with `cargo run --example quickstart`.

use strong_dependency::core::{
    classify, problem::Problem, solve, Cmd, Domain, Expr, ObjSet, Op, Phi, Query, System, Universe,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §3.2 system: δ: if m then β ← α.
    let u = Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, 3)?),
        ("beta".into(), Domain::int_range(0, 3)?),
        ("m".into(), Domain::boolean()),
    ])?;
    let alpha = u.obj("alpha")?;
    let beta = u.obj("beta")?;
    let m = u.obj("m")?;
    let sys = System::new(
        u,
        vec![Op::from_cmd(
            "copy",
            Cmd::when(Expr::var(m), Cmd::assign(beta, Expr::var(alpha))),
        )],
    );
    sys.validate()?;
    println!("{sys}");

    // Can information be transmitted from α to β? (Def 2-7, decided by
    // pair reachability.)
    let src = ObjSet::singleton(alpha);
    match Query::new(Phi::True, src.clone())
        .beta(beta)
        .run_on(&sys)?
        .into_witness()
    {
        Some(w) => {
            println!("α ▷ β — yes. Witness history: {}", w.history);
            println!(
                "  σ1 = {}\n  σ2 = {}",
                w.sigma1.display(sys.universe()),
                w.sigma2.display(sys.universe())
            );
        }
        None => println!("α ▷ β — no."),
    }

    // The solution the paper suggests: φ(σ) ≡ ¬σ.m.
    let phi = Phi::expr(Expr::var(m).not());
    println!(
        "\nφ = ¬m: autonomous = {}, invariant = {}",
        classify::is_autonomous(&sys, &phi)?,
        classify::is_invariant(&sys, &phi)?
    );
    let problem = Problem::no_flow(src.clone(), beta, true);
    println!(
        "φ solves ¬α ▷φ β (α-independently): {}",
        problem.is_solution(&sys, &phi)?
    );

    // A certificate via Strong Dependency Induction (Corollary 4-2).
    let outcome = strong_dependency::core::induction::prove_cor_4_2(&sys, &phi, alpha, beta)?;
    if let Some(cert) = outcome.certificate() {
        println!("\n{cert}");
    }

    // The *maximal* α-independent solution, constructed (Thm 3-1).
    let phi_max = solve::unique_maximal_independent_solution(&sys, &src, beta)?;
    println!(
        "maximal solution admits {} of {} states (φ = ¬m admits {})",
        phi_max.sat(&sys)?.count(),
        sys.state_count()?,
        phi.sat(&sys)?.count()
    );
    Ok(())
}
