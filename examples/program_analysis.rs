//! Information transmission in sequential programs (§6.5): Floyd
//! assertions as inductive covers, compared against Denning-style static
//! certification.
//!
//! Run with `cargo run --example program_analysis`.

use strong_dependency::flow::{certify, Classification, FiniteLattice};
use strong_dependency::lang::{compile, floyd, parse, Assertions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §6.5 flowchart program.
    let src = "\
var alpha: int 0..1;
var beta: int 0..1;
var q: int 0..15;
var t: bool;
if q > 10 { t := true; } else { t := false; }
if t { beta := alpha; }
";
    let program = parse(src)?;
    println!("{program}");

    let compiled = compile(&program)?;
    println!(
        "compiled to {} pc-guarded operations (entry pc {}, exit pc {})",
        compiled.flat.len(),
        compiled.entry,
        compiled.exit
    );
    for f in &compiled.flat {
        println!("  δ{}: {}", f.label, f.text);
    }

    // Without any entry assertion, information flows from alpha to beta.
    let nothing = Assertions::new();
    println!(
        "\nno entry assertion: alpha ▷ beta = {}",
        floyd::depends_exact(&compiled, &nothing, "alpha", "beta")?
    );

    // The paper's proof: entry assertion q < 10, intermediate assertion ¬t
    // before statement 2. The pc-indexed assertions form an inductive
    // cover (Def 6-2) and Theorem 6-7 discharges the no-flow claim.
    let ann = Assertions::new().with_entry("q < 10")?.with_at(2, "!t")?;
    println!(
        "assertions {{entry: q < 10, @2: !t}} form an inductive cover: {}",
        floyd::verify_assertions(&compiled, &ann)?
    );
    let outcome = floyd::prove_no_flow(&compiled, &ann, "alpha", "beta")?;
    if let Some(cert) = outcome.certificate() {
        println!("\n{cert}");
    }

    // The Denning baseline on the same program: with Cls(alpha) = H and
    // Cls(beta) = L the assignment `beta := alpha` is rejected regardless
    // of the entry assertion — static certification cannot use q < 10.
    let lat = FiniteLattice::two_point();
    let h = lat.label("H")?;
    let l = lat.label("L")?;
    let cls = Classification::new()
        .with("alpha", h)
        .with("beta", l)
        .with("q", l)
        .with("t", l);
    let certified = certify(&program, &lat, &cls)?;
    println!(
        "Denning certification rejects the program: {} ({} violation(s))",
        !certified.ok(),
        certified.violations.len()
    );
    for v in &certified.violations {
        println!(
            "  violation at `{}` ({})",
            v.stmt,
            if v.implicit { "implicit" } else { "explicit" }
        );
    }
    println!(
        "\nthe semantic analysis accepts under q < 10 what the static \
         analysis must reject — the precision gap of §1.5."
    );
    Ok(())
}
