//! Auditing a mechanism for covert paths (§7.3).
//!
//! A mechanism presents users with an augmented system implemented on a
//! base system. [Rotenberg 73] warns that mechanisms can *add* covert
//! information paths even while removing overt ones. This example builds
//! two mechanisms over the same base — a scrubbing virtual machine (safe)
//! and a caching one (leaky) — and audits both with the strong-dependency
//! machinery.
//!
//! Run with `cargo run --example mechanism_audit`.

use std::sync::Arc;

use strong_dependency::core::mechanism::{added_paths, removed_paths, Mechanism};
use strong_dependency::core::{Cmd, Domain, Expr, History, Op, OpId, Phi, System, Universe};

fn universe() -> Universe {
    Universe::new(vec![
        ("alpha".into(), Domain::int_range(0, 1).unwrap()),
        ("beta".into(), Domain::int_range(0, 1).unwrap()),
        ("tmp".into(), Domain::int_range(0, 1).unwrap()),
    ])
    .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base system: stash α into tmp, emit tmp into β, scrub tmp.
    let ub = universe();
    let (a, b, tmp) = (ub.obj("alpha")?, ub.obj("beta")?, ub.obj("tmp")?);
    let base = System::new(
        ub,
        vec![
            Op::from_cmd("stash", Cmd::assign(tmp, Expr::var(a))),
            Op::from_cmd("emit", Cmd::assign(b, Expr::var(tmp))),
            Op::from_cmd("scrub", Cmd::assign(tmp, Expr::int(0))),
        ],
    );

    // Mechanism 1: a single user-visible "copy" that always scrubs its
    // temporary — realized as stash · emit · scrub.
    let ua = universe();
    let (aa, ab, atmp) = (ua.obj("alpha")?, ua.obj("beta")?, ua.obj("tmp")?);
    let augmented = System::new(
        ua,
        vec![Op::from_cmd(
            "copy_scrubbed",
            Cmd::Seq(vec![
                Cmd::assign(atmp, Expr::var(aa)),
                Cmd::assign(ab, Expr::var(atmp)),
                Cmd::assign(atmp, Expr::int(0)),
            ]),
        )],
    );
    let scrubber = Mechanism {
        augmented,
        base: base.clone(),
        project: Arc::new(|_aug, _base, sigma| Ok(sigma.clone())),
        realize: vec![History::from_ops(vec![OpId(0), OpId(1), OpId(2)])],
        visible: vec![(aa, a), (ab, b), (atmp, tmp)],
    };
    println!("scrubbing mechanism:");
    println!(
        "  simulation checks passed: {}",
        scrubber.check_simulation()?
    );
    let added = added_paths(&scrubber, &Phi::True, &Phi::True)?;
    let removed = removed_paths(&scrubber, &Phi::True, &Phi::True)?;
    println!("  covert paths added: {}", added.len());
    println!(
        "  paths removed: {} (e.g. α → tmp no longer lingers)",
        removed.len()
    );

    // Mechanism 2: a "caching" copy over a *direct-copy* base (no tmp
    // traffic at all in the base: copy writes β, reset clears tmp). The
    // augmented copy additionally records whether α was 1 into tmp — a
    // cache-hit flag observable by later readers. The simulation check
    // catches that the base cannot realize the probe write, and the path
    // audit names the covert channel.
    let ub2 = universe();
    let (b2a, b2b, b2tmp) = (ub2.obj("alpha")?, ub2.obj("beta")?, ub2.obj("tmp")?);
    let direct_base = System::new(
        ub2,
        vec![
            Op::from_cmd("copy", Cmd::assign(b2b, Expr::var(b2a))),
            Op::from_cmd("reset", Cmd::assign(b2tmp, Expr::int(0))),
        ],
    );
    let uc = universe();
    let (ca, cb, ctmp) = (uc.obj("alpha")?, uc.obj("beta")?, uc.obj("tmp")?);
    let caching = System::new(
        uc,
        vec![
            Op::from_cmd(
                "copy_cached",
                Cmd::Seq(vec![
                    Cmd::assign(cb, Expr::var(ca)),
                    Cmd::If(
                        Expr::var(ca).eq(Expr::int(1)),
                        Box::new(Cmd::assign(ctmp, Expr::int(1))),
                        Box::new(Cmd::assign(ctmp, Expr::int(0))),
                    ),
                ]),
            ),
            Op::from_cmd("reset", Cmd::assign(ctmp, Expr::int(0))),
        ],
    );
    let leaky = Mechanism {
        augmented: caching,
        base: direct_base,
        project: Arc::new(|_aug, _base, sigma| Ok(sigma.clone())),
        // Claimed realization: the plain base copy — a lie the checker
        // exposes (the base cannot reproduce the probe write).
        realize: vec![History::single(OpId(0)), History::single(OpId(1))],
        visible: vec![(ca, b2a), (cb, b2b), (ctmp, b2tmp)],
    };
    println!("\ncaching mechanism:");
    match leaky.check_simulation() {
        Ok(_) => println!("  simulation unexpectedly passed"),
        Err(e) => println!("  simulation FAILS: {e}"),
    }
    let added = added_paths(&leaky, &Phi::True, &Phi::True)?;
    println!("  covert paths added (visible-object indices): {added:?}");
    println!("  index 0 = α, index 2 = tmp: the cache flag leaks α — the Rotenberg hazard.");
    Ok(())
}
