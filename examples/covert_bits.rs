//! Quantitative information transmission (§1.8, §7.4): how many bits does
//! an operation transmit, and how does noise bound a covert channel?
//!
//! Run with `cargo run --example covert_bits`.

use strong_dependency::core::{examples, History, ObjSet, OpId, Phi};
use strong_dependency::info::{
    bits_equivocation, bits_held_constant, interference, source_entropy, Channel, Dist,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §7.4's adder: β ← (α1 + α2) mod 128.
    let k = 7;
    let sys = examples::mod_adder_system(k)?;
    let u = sys.universe();
    let a1 = u.obj("a1")?;
    let a2 = u.obj("a2")?;
    let beta = u.obj("beta")?;
    let dist = Dist::uniform(&sys, &Phi::True)?;
    let h = History::single(OpId(0));

    let pair = ObjSet::from_iter([a1, a2]);
    println!("system: β ← (α1 + α2) mod {}", 1 << k);
    println!(
        "H(α1) = {:.1} bits",
        source_entropy(&sys, &dist, &ObjSet::singleton(a1))
    );
    println!(
        "b({{α1,α2}} → β)          = {:.1} bits",
        bits_equivocation(&sys, &dist, &pair, beta, &h)?
    );
    println!(
        "b(α1 → β), equivocation  = {:.1} bits (observer of β learns nothing about α1 alone)",
        bits_equivocation(&sys, &dist, &ObjSet::singleton(a1), beta, &h)?
    );
    println!(
        "b(α1 → β), held-constant = {:.1} bits (fix α2 and α1's variety crosses whole)",
        bits_held_constant(&sys, &dist, a1, beta, &h)?
    );
    println!(
        "interference b(α1)+b(α2)-b(both) = {:.1} bits",
        interference(
            &sys,
            &dist,
            &ObjSet::singleton(a1),
            &ObjSet::singleton(a2),
            beta,
            &h
        )?
    );

    // §1.8: a user leaks bits to an observer through a noisy covert
    // channel (e.g. disk-arm timing). How much noise drops the bandwidth
    // below 0.1 bit/use?
    println!("\ncovert channel capacity vs noise (binary symmetric channel):");
    println!("  ε      capacity (bits/use)");
    for eps in [0.0, 0.1, 0.2, 0.3, 0.35, 0.4, 0.45] {
        let (cap, iters, _) = Channel::bsc(eps)?.capacity(1e-9, 10_000)?;
        println!("  {eps:<5}  {cap:.4}   ({iters} Blahut–Arimoto iterations)");
    }
    let target = 0.1;
    let mut eps = 0.0;
    while 1.0 - strong_dependency::info::binary_entropy(eps) > target {
        eps += 0.005;
    }
    println!("noise ε ≈ {eps:.3} suffices to push the channel below {target} bit/use");
    Ok(())
}
