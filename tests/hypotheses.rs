//! Integration tests for the paper's two hypotheses (§5.2, §5.3), linking
//! the qualitative formalism (sd-core) with the quantitative one (sd-info).
//!
//! - **Strong Dependency Hypothesis**: `A ▷φH β` implies information can
//!   be transmitted — quantitatively, positive mutual information under
//!   the uniform distribution over Sat(φ).
//! - **Relative Autonomy Hypothesis**: for A-autonomous φ, `¬A ▷φH β`
//!   implies *no* information is transmitted — zero mutual information.
//!   For non-autonomous φ the converse genuinely fails (§5.2's α1 = α2
//!   example), and we check that failure too.

mod common;

use common::{random_autonomous_phi, random_phi, random_src_sink, random_system};
use strong_dependency::core::{classify, depend, examples, history, Expr, ObjSet, Phi};
use strong_dependency::info::{bits_equivocation, Dist};

const EPS: f64 = 1e-9;

/// SD hypothesis: a strong dependency always carries positive mutual
/// information under the uniform distribution over Sat(φ).
#[test]
fn strong_dependency_implies_positive_bits() {
    let mut hits = 0;
    for seed in 0..10u64 {
        let sys = random_system(3, 3, 3, seed);
        let phi = random_phi(&sys, seed);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        let dist = Dist::uniform(&sys, &phi).unwrap();
        let (a, beta) = random_src_sink(&sys, seed + 40);
        for h in history::histories_up_to(sys.num_ops(), 2) {
            let dep = depend::strongly_depends_after(&sys, &phi, &a, beta, &h)
                .unwrap()
                .is_some();
            if dep {
                hits += 1;
                let bits = bits_equivocation(&sys, &dist, &a, beta, &h).unwrap();
                assert!(
                    bits > EPS,
                    "seed {seed}, H = {h}: dependency with zero bits"
                );
            }
        }
    }
    assert!(hits > 0, "the sweep should hit some dependencies");
}

/// Relative autonomy: for *A-autonomous* φ (uniform over Sat), zero
/// strong dependency means zero transmitted bits, and vice versa.
#[test]
fn relative_autonomy_hypothesis_equivalence() {
    let mut checked = 0;
    for seed in 0..10u64 {
        let sys = random_system(3, 3, 3, seed);
        let phi = random_autonomous_phi(&sys, seed);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        let (a, beta) = random_src_sink(&sys, seed + 90);
        if !classify::is_autonomous_relative(&sys, &phi, &a).unwrap() {
            continue;
        }
        let dist = Dist::uniform(&sys, &phi).unwrap();
        for h in history::histories_up_to(sys.num_ops(), 2) {
            checked += 1;
            let dep = depend::strongly_depends_after(&sys, &phi, &a, beta, &h)
                .unwrap()
                .is_some();
            let bits = bits_equivocation(&sys, &dist, &a, beta, &h).unwrap();
            assert_eq!(
                dep,
                bits > EPS,
                "seed {seed}, H = {h}: SD = {dep} but bits = {bits}"
            );
        }
    }
    assert!(checked > 50, "the sweep should check many histories");
}

/// §5.2's counterexample to the converse: under φ: α1 = α2 (non-
/// autonomous relative to {α1}), ¬α1 ▷φ β even though β ← α1 plainly
/// transmits — and the mutual information confirms the transmission.
#[test]
fn converse_fails_for_non_autonomous_phi() {
    let sys = examples::alpha12_copy_system(4).unwrap();
    let u = sys.universe();
    let a1 = u.obj("a1").unwrap();
    let a2 = u.obj("a2").unwrap();
    let beta = u.obj("beta").unwrap();
    let phi = Phi::expr(Expr::var(a1).eq(Expr::var(a2)));
    assert!(!classify::is_autonomous_relative(&sys, &phi, &ObjSet::singleton(a1)).unwrap());

    let h = strong_dependency::core::History::single(strong_dependency::core::OpId(0));
    // Qualitatively: no strong dependency from α1 alone…
    let dep = depend::strongly_depends_after(&sys, &phi, &ObjSet::singleton(a1), beta, &h).unwrap();
    assert!(dep.is_none());
    // …but the mutual information is 2 full bits: the observer of β
    // learns α1 exactly (the "spread variety" of §5.2).
    let dist = Dist::uniform(&sys, &phi).unwrap();
    let bits = bits_equivocation(&sys, &dist, &ObjSet::singleton(a1), beta, &h).unwrap();
    assert!((bits - 2.0).abs() < 1e-9, "expected 2 bits, got {bits}");
    // Treating the clump {α1, α2} as one source restores agreement
    // (Relative Autonomy Hypothesis).
    let pair = ObjSet::from_iter([a1, a2]);
    assert!(classify::is_autonomous_relative(&sys, &phi, &pair).unwrap());
    let dep_pair = depend::strongly_depends_after(&sys, &phi, &pair, beta, &h).unwrap();
    assert!(dep_pair.is_some());
}

/// The time-only observer never sees more than the known-history
/// observer, across random systems.
#[test]
fn observation_power_is_monotone() {
    for seed in 0..6u64 {
        let sys = random_system(3, 2, 2, seed);
        let phi = random_phi(&sys, seed);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        let (a, beta) = random_src_sink(&sys, seed + 7);
        let weak = strong_dependency::core::observe::depends_observed(
            &sys,
            &phi,
            &a,
            beta,
            strong_dependency::core::observe::Observer::TimeOnly,
        )
        .unwrap();
        let strong = strong_dependency::core::observe::depends_observed(
            &sys,
            &phi,
            &a,
            beta,
            strong_dependency::core::observe::Observer::KnownHistory,
        )
        .unwrap();
        assert!(!weak || strong, "seed {seed}: time-only saw more");
    }
}
