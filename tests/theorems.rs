//! Integration tests: the paper's theorems, validated on families of
//! random systems against the exact decision procedures.

mod common;

use common::{random_autonomous_phi, random_phi, random_src_sink, random_system};
use strong_dependency::core::{
    after, classify, cover, depend, history, induction, History, ObjSet, Phi, Query,
};

/// Systems used across the theorem sweeps.
fn systems() -> Vec<strong_dependency::core::System> {
    let mut out = Vec::new();
    for seed in 0..8u64 {
        out.push(random_system(3, 3, 3, seed));
    }
    for seed in 8..12u64 {
        out.push(random_system(4, 2, 4, seed));
    }
    out
}

#[test]
fn random_systems_are_closed() {
    for sys in systems() {
        sys.validate().expect("workload systems are total");
    }
}

/// Theorem 2-2: A1 ⊆ A2 ⊃ (A1 ▷φH β ⊃ A2 ▷φH β).
#[test]
fn theorem_2_2_source_monotonicity() {
    for (i, sys) in systems().into_iter().enumerate() {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, i as u64);
        let a1 = ObjSet::singleton(ids[0]);
        let a2 = ObjSet::from_iter([ids[0], ids[1]]);
        for h in history::histories_up_to(sys.num_ops(), 2) {
            for &beta in &ids {
                let small = depend::strongly_depends_after(&sys, &phi, &a1, beta, &h)
                    .unwrap()
                    .is_some();
                let big = depend::strongly_depends_after(&sys, &phi, &a2, beta, &h)
                    .unwrap()
                    .is_some();
                assert!(!small || big, "Thm 2-2 violated (seed {i}, H = {h})");
            }
        }
    }
}

/// Theorem 2-3: φ1 ⊆ φ2 ⊃ (A ▷φ1H β ⊃ A ▷φ2H β).
#[test]
fn theorem_2_3_constraint_monotonicity() {
    for (i, sys) in systems().into_iter().enumerate() {
        let phi2 = random_phi(&sys, i as u64);
        let phi1 = phi2
            .clone()
            .and(random_autonomous_phi(&sys, 100 + i as u64));
        assert!(phi1.entails(&sys, &phi2).unwrap());
        let (a, beta) = random_src_sink(&sys, i as u64);
        for h in history::histories_up_to(sys.num_ops(), 2) {
            let small = depend::strongly_depends_after(&sys, &phi1, &a, beta, &h)
                .unwrap()
                .is_some();
            let big = depend::strongly_depends_after(&sys, &phi2, &a, beta, &h)
                .unwrap()
                .is_some();
            assert!(!small || big, "Thm 2-3 violated (seed {i}, H = {h})");
        }
    }
}

/// Theorem 2-4: if φ eliminates all variety in A, nothing flows from A.
#[test]
fn theorem_2_4_no_variety_no_flow() {
    for (i, sys) in systems().into_iter().enumerate() {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let a = ObjSet::singleton(ids[0]);
        // Pin the source to a constant.
        let phi = Phi::expr(
            strong_dependency::core::Expr::var(ids[0]).eq(strong_dependency::core::Expr::int(0)),
        );
        for &beta in &ids {
            if beta == ids[0] {
                continue;
            }
            // Over the empty and unit histories (exhaustive over all
            // histories would allow later writes INTO α to flow onward,
            // which Thm 2-4 does not forbid — it speaks of A's initial
            // variety).
            let dep =
                depend::strongly_depends_after(&sys, &phi, &a, beta, &History::empty()).unwrap();
            assert!(dep.is_none(), "Thm 2-4 violated (seed {i})");
        }
    }
}

/// Theorem 2-5: A ▷φλ β ⊃ β ∈ A.
#[test]
fn theorem_2_5_lambda_reflexive() {
    for (i, sys) in systems().into_iter().enumerate() {
        let phi = random_phi(&sys, i as u64);
        let (a, beta) = random_src_sink(&sys, 31 + i as u64);
        let dep = depend::strongly_depends_after(&sys, &phi, &a, beta, &History::empty())
            .unwrap()
            .is_some();
        assert!(!dep || a.contains(beta), "Thm 2-5 violated (seed {i})");
    }
}

/// Theorem 2-6: for autonomous φ, A ▷φH β ⊃ ∃α ∈ A: α ▷φH β.
#[test]
fn theorem_2_6_set_sources_decompose() {
    for (i, sys) in systems().into_iter().enumerate() {
        let phi = random_autonomous_phi(&sys, i as u64);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        assert!(classify::is_autonomous(&sys, &phi).unwrap());
        let (a, beta) = random_src_sink(&sys, 77 + i as u64);
        for h in history::histories_up_to(sys.num_ops(), 2) {
            let set_dep = depend::strongly_depends_after(&sys, &phi, &a, beta, &h)
                .unwrap()
                .is_some();
            if set_dep {
                let any_single = a.iter().any(|alpha| {
                    depend::strongly_depends_after(&sys, &phi, &ObjSet::singleton(alpha), beta, &h)
                        .unwrap()
                        .is_some()
                });
                assert!(any_single, "Thm 2-6 violated (seed {i}, H = {h})");
            }
        }
    }
}

/// Theorem 4-1: for autonomous invariant φ, a two-part dependency factors
/// through an intermediate object.
#[test]
fn theorem_4_1_intermediate_objects() {
    for (i, sys) in systems().into_iter().enumerate().take(6) {
        let phi = random_autonomous_phi(&sys, i as u64);
        if phi.sat(&sys).unwrap().is_empty() || !classify::is_invariant(&sys, &phi).unwrap() {
            continue;
        }
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        assert!(
            induction::check_theorem_4_1(&sys, &phi, ids[0], ids[1], 2).unwrap(),
            "Thm 4-1 violated (seed {i})"
        );
    }
}

/// Theorem 5-5: the pointwise decomposition through difference sets, for
/// invariant φ (and in fact pointwise for any φ — Thm 6-4).
#[test]
fn theorem_5_5_pointwise_decomposition() {
    for (i, sys) in systems().into_iter().enumerate().take(6) {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, 600 + i as u64);
        let a = ObjSet::singleton(ids[0]);
        assert!(
            induction::check_theorem_5_5(&sys, &phi, &a, ids[1], 2).unwrap(),
            "Thm 5-5 violated (seed {i})"
        );
    }
}

/// Theorem 6-3: decomposition through set intermediates under the evolved
/// constraint [H]φ, for arbitrary (non-invariant) φ.
#[test]
fn theorem_6_3_evolved_constraint() {
    for (i, sys) in systems().into_iter().enumerate().take(6) {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, 700 + i as u64);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        let a = ObjSet::singleton(ids[0]);
        assert!(
            induction::check_theorem_6_3(&sys, &phi, &a, ids[1], 2).unwrap(),
            "Thm 6-3 violated (seed {i})"
        );
    }
}

/// Theorem 4-5: separation of variety over A-independent covers.
#[test]
fn theorem_4_5_separation() {
    for (i, sys) in systems().into_iter().enumerate() {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let (a, beta) = random_src_sink(&sys, 13 + i as u64);
        // Split on an object outside A.
        let Some(&pivot) = ids.iter().find(|o| !a.contains(**o)) else {
            continue;
        };
        let split =
            strong_dependency::core::Expr::var(pivot).lt(strong_dependency::core::Expr::int(1));
        let cover = vec![Phi::expr(split.clone()), Phi::expr(split).not()];
        assert!(
            cover::check_theorem_4_5(&sys, &Phi::True, &cover, &a, beta).unwrap(),
            "Thm 4-5 violated (seed {i})"
        );
    }
}

/// Theorem 5-1: the A-autonomy product characterization agrees with the
/// literal substitution condition.
#[test]
fn theorem_5_1_substitution() {
    for (i, sys) in systems().into_iter().enumerate() {
        let phi = random_phi(&sys, 55 + i as u64);
        let (a, _) = random_src_sink(&sys, i as u64);
        let fast = classify::is_autonomous_relative(&sys, &phi, &a).unwrap();
        let sat: Vec<_> = sys
            .states()
            .unwrap()
            .filter(|s| phi.holds(&sys, s).unwrap())
            .collect();
        let literal = sat.iter().all(|s1| {
            sat.iter()
                .all(|s2| phi.holds(&sys, &s2.substitute(&a, s1)).unwrap())
        });
        assert_eq!(fast, literal, "Thm 5-1 mismatch (seed {i})");
    }
}

/// Theorem 5-3: set-target dependency implies each member singly.
#[test]
fn theorem_5_3_set_targets() {
    for (i, sys) in systems().into_iter().enumerate().take(6) {
        let u = sys.universe();
        let ids: Vec<_> = u.objects().collect();
        let phi = random_phi(&sys, i as u64);
        let a = ObjSet::singleton(ids[0]);
        let b = ObjSet::from_iter([ids[1], ids[2 % ids.len()]]);
        for h in history::histories_up_to(sys.num_ops(), 2) {
            let set_dep = depend::strongly_depends_set_after(&sys, &phi, &a, &b, &h)
                .unwrap()
                .is_some();
            if set_dep {
                for beta in b.iter() {
                    assert!(
                        depend::strongly_depends_after(&sys, &phi, &a, beta, &h)
                            .unwrap()
                            .is_some(),
                        "Thm 5-3 violated (seed {i})"
                    );
                }
            }
        }
    }
}

/// Theorem 6-1: φ(σ) ⊃ [H]φ(H(σ)).
#[test]
fn theorem_6_1_after_images() {
    for (i, sys) in systems().into_iter().enumerate().take(6) {
        let phi = random_phi(&sys, i as u64);
        assert!(
            after::check_theorem_6_1(&sys, &phi, 2).unwrap(),
            "Thm 6-1 violated (seed {i})"
        );
    }
}

/// Theorem 6-2: invariant φ ⊃ [H]φ ⊆ φ.
#[test]
fn theorem_6_2_invariant_shrinks() {
    for (i, sys) in systems().into_iter().enumerate() {
        let phi = random_phi(&sys, i as u64);
        if !classify::is_invariant(&sys, &phi).unwrap() {
            continue;
        }
        let sat = phi.sat(&sys).unwrap();
        for img in after::reachable_images(&sys, &phi).unwrap() {
            assert!(img.is_subset(&sat), "Thm 6-2 violated (seed {i})");
        }
    }
}

/// Soundness of the provers: whatever they prove, the exact oracle
/// confirms.
#[test]
fn provers_are_sound() {
    let mut proved = 0;
    for (i, sys) in systems().into_iter().enumerate() {
        let phi = random_phi(&sys, 200 + i as u64);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        let (a, beta) = random_src_sink(&sys, 300 + i as u64);
        if a.contains(beta) {
            continue;
        }
        for outcome in [
            induction::prove_cor_5_6(&sys, &phi, &a, beta).unwrap(),
            induction::prove_cor_6_5(&sys, &phi, &a, beta).unwrap(),
        ] {
            if outcome.is_proved() {
                proved += 1;
                assert!(
                    !Query::new(phi.clone(), a.clone())
                        .beta(beta)
                        .run_on(&sys)
                        .unwrap()
                        .holds(),
                    "prover claimed ¬A ▷φ β but the oracle found a flow (seed {i})"
                );
            }
        }
    }
    assert!(proved > 0, "the sweep should exercise at least one proof");
}

/// The exact BFS agrees with brute-force bounded history enumeration.
#[test]
fn bfs_matches_bounded_enumeration() {
    for (i, sys) in systems().into_iter().enumerate().take(8) {
        let phi = random_phi(&sys, 400 + i as u64);
        let (a, beta) = random_src_sink(&sys, 500 + i as u64);
        let exact = Query::new(phi.clone(), a.clone())
            .beta(beta)
            .run_on(&sys)
            .unwrap()
            .into_witness();
        let brute = Query::new(phi.clone(), a.clone())
            .beta(beta)
            .bounded(3)
            .run_on(&sys)
            .unwrap()
            .into_witness();
        if brute.is_some() {
            assert!(exact.is_some(), "BFS missed a bounded flow (seed {i})");
        }
        if let Some(w) = exact {
            // Replay the witness.
            let o1 = sys.run(&w.sigma1, &w.history).unwrap();
            let o2 = sys.run(&w.sigma2, &w.history).unwrap();
            assert_ne!(o1.index(beta), o2.index(beta));
            assert!(w.sigma1.eq_except(&w.sigma2, &a));
            assert!(phi.holds(&sys, &w.sigma1).unwrap());
            assert!(phi.holds(&sys, &w.sigma2).unwrap());
        }
    }
}
