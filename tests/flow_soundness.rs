//! Integration tests: the static baseline is sound with respect to exact
//! strong dependency (it never misses a real flow), and Denning
//! certification implies semantic security on straight-line programs.

mod common;

use common::{random_phi, random_system};
use strong_dependency::core::{ObjSet, Phi};
use strong_dependency::flow::{
    certify, semantic_flows, transitive_flows, Classification, FiniteLattice,
};
use strong_dependency::lang::{compile, parse};

/// Static ⊇ semantic on random systems: the Cor 4-3 argument with q = the
/// static closure relation (φ = tt is autonomous and invariant).
#[test]
fn static_baseline_is_sound_on_random_systems() {
    for seed in 0..10u64 {
        let sys = random_system(3, 3, 3, seed);
        let stat = transitive_flows(&sys).unwrap();
        let sem = semantic_flows(&sys, &Phi::True).unwrap();
        for pair in &sem {
            assert!(stat.contains(pair), "seed {seed}: static missed {pair:?}");
        }
    }
}

/// Constraints only remove semantic flows, so soundness survives any φ.
#[test]
fn static_baseline_sound_under_constraints() {
    for seed in 0..6u64 {
        let sys = random_system(3, 2, 3, seed);
        let phi = random_phi(&sys, seed);
        if phi.sat(&sys).unwrap().is_empty() {
            continue;
        }
        let stat = transitive_flows(&sys).unwrap();
        let sem = semantic_flows(&sys, &phi).unwrap();
        for pair in &sem {
            assert!(stat.contains(pair), "seed {seed}: static missed {pair:?}");
        }
    }
}

/// Denning certification soundness on data-independent-control programs:
/// if certification succeeds, no semantic down-flow exists among program
/// variables.
#[test]
fn denning_certification_implies_semantic_security() {
    let lat = FiniteLattice::two_point();
    let hi = lat.label("H").unwrap();
    let lo = lat.label("L").unwrap();
    // Straight-line / branch-free-if programs (compiled atomically, so the
    // pc carries no data).
    let cases = [
        // Certified: only up-flows.
        ("var l: int 0..1; var h: int 0..1; h := l;", true),
        (
            "var l: int 0..1; var h: int 0..1; if l == 1 { h := 1; }",
            true,
        ),
        // Rejected: explicit down-flow.
        ("var l: int 0..1; var h: int 0..1; l := h;", false),
        // Rejected: implicit down-flow.
        (
            "var l: int 0..1; var h: int 0..1; if h == 1 { l := 1; }",
            false,
        ),
        // Certified: h overwritten by constant, then copied down — still a
        // *static* rejection (h's label sticks), conservative vs semantics.
        ("var l: int 0..1; var h: int 0..1; h := 0; l := h;", false),
    ];
    for (src, expect_certified) in cases {
        let p = parse(src).unwrap();
        let cls = Classification::new().with("l", lo).with("h", hi);
        let certified = certify(&p, &lat, &cls).unwrap().ok();
        assert_eq!(certified, expect_certified, "src: {src}");
        if certified {
            // Soundness: no semantic flow h → l from the entry.
            let c = compile(&p).unwrap();
            let h_obj = c.var("h").unwrap();
            let l_obj = c.var("l").unwrap();
            let dep = strong_dependency::core::Query::new(c.at_entry(), ObjSet::singleton(h_obj))
                .beta(l_obj)
                .run_on(&c.system)
                .unwrap()
                .into_witness();
            assert!(dep.is_none(), "certified program leaks: {src}");
        }
    }
    // The last case shows static conservatism: rejected statically, but
    // semantically clean (h's initial value is destroyed first).
    let p = parse("var l: int 0..1; var h: int 0..1; h := 0; l := h;").unwrap();
    let c = compile(&p).unwrap();
    let dep =
        strong_dependency::core::Query::new(c.at_entry(), ObjSet::singleton(c.var("h").unwrap()))
            .beta(c.var("l").unwrap())
            .run_on(&c.system)
            .unwrap()
            .into_witness();
    assert!(
        dep.is_none(),
        "overwritten-then-copied h transmits nothing (§3.3's point)"
    );
}

/// Millen-style cover-sensitive flows sit between the semantic truth and
/// the plain baseline on random systems with single-object covers.
#[test]
fn millen_refinement_is_sound_and_between() {
    use strong_dependency::core::Expr;
    for seed in 0..8u64 {
        let sys = random_system(3, 2, 3, seed);
        let u = sys.universe();
        // Cover on x2's value (autonomous pieces).
        let x2 = u.obj("x2").unwrap();
        let cover = vec![
            Phi::expr(Expr::var(x2).eq(Expr::int(0))),
            Phi::expr(Expr::var(x2).eq(Expr::int(1))),
        ];
        let refined = match strong_dependency::flow::cover_sensitive_flows(&sys, &Phi::True, &cover)
        {
            Ok(r) => r,
            // Random operations may scatter the pieces; the checked
            // entry point rejects such families, which is fine.
            Err(_) => continue,
        };
        let semantic = semantic_flows(&sys, &Phi::True).unwrap();
        let baseline = transitive_flows(&sys).unwrap();
        for pair in &semantic {
            assert!(
                refined.contains(pair),
                "seed {seed}: refinement missed {pair:?}"
            );
        }
        for pair in &refined {
            assert!(
                baseline.contains(pair),
                "seed {seed}: refinement invented {pair:?}"
            );
        }
    }
}

/// The §4.4 non-transitive program at the source level: the static
/// analysis rejects it, the semantic analysis accepts it.
#[test]
fn nontransitive_program_precision_gap() {
    let src = "\
var alpha: int 0..1;
var beta: int 0..1;
var m: int 0..1;
var q: bool;
if q { m := alpha; }
if !q { beta := m; }
";
    let p = parse(src).unwrap();
    let lat = FiniteLattice::two_point();
    let hi = lat.label("H").unwrap();
    let lo = lat.label("L").unwrap();
    let cls = Classification::new()
        .with("alpha", hi)
        .with("beta", lo)
        .with("m", hi)
        .with("q", lo);
    // Static: rejected (m → beta is a down-flow; transitively alpha → beta).
    assert!(!certify(&p, &lat, &cls).unwrap().ok());
    // Semantic: no flow alpha → beta over the program's own execution
    // order (δ1 then δ2) — the §4.4 claim.
    let c = compile(&p).unwrap();
    let a = c.var("alpha").unwrap();
    let b = c.var("beta").unwrap();
    let h = strong_dependency::core::History::from_ops(vec![
        strong_dependency::core::OpId(0),
        strong_dependency::core::OpId(1),
    ]);
    let dep = strong_dependency::core::depend::strongly_depends_after(
        &c.system,
        &c.at_entry(),
        &ObjSet::singleton(a),
        b,
        &h,
    )
    .unwrap();
    assert!(dep.is_none(), "no transmission over δ1·δ2 (§4.4)");
}
