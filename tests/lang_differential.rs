//! Differential testing: the direct interpreter and the pc-compiled
//! computational system must agree on every program and input.

use proptest::prelude::*;
use strong_dependency::lang::{compile, eval, parse, Program, Stmt, Type, Val};

/// Strategy: small expressions over `n` int variables in `0..k`.
fn arb_expr(n: usize, k: i64) -> impl Strategy<Value = strong_dependency::lang::Expr> {
    use strong_dependency::lang::ast::BinOp;
    use strong_dependency::lang::Expr;
    let leaf = prop_oneof![
        (0..k).prop_map(Expr::Int),
        (0..n).prop_map(|i| Expr::Var(format!("v{i}"))),
    ];
    leaf.prop_recursive(2, 8, 2, move |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| {
            prop_oneof![
                Just(Expr::Bin(
                    BinOp::Add,
                    Box::new(a.clone()),
                    Box::new(b.clone())
                )),
                Just(Expr::Bin(
                    BinOp::Sub,
                    Box::new(a.clone()),
                    Box::new(b.clone())
                )),
                Just(Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))),
            ]
        })
    })
}

/// Strategy: boolean guards comparing an int expression to a constant.
fn arb_guard(n: usize, k: i64) -> impl Strategy<Value = strong_dependency::lang::Expr> {
    use strong_dependency::lang::ast::BinOp;
    use strong_dependency::lang::Expr;
    (arb_expr(n, k), 0..k, 0..4u8).prop_map(|(e, c, which)| {
        let op = match which {
            0 => BinOp::Lt,
            1 => BinOp::Le,
            2 => BinOp::Eq,
            _ => BinOp::Gt,
        };
        Expr::Bin(op, Box::new(e), Box::new(Expr::Int(c)))
    })
}

fn arb_stmt(n: usize, k: i64, depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (0..n, arb_expr(n, k)).prop_map(|(i, e)| Stmt::Assign(format!("v{i}"), e));
    if depth == 0 {
        prop_oneof![assign, Just(Stmt::Skip)].boxed()
    } else {
        let inner = move || prop::collection::vec(arb_stmt(n, k, depth - 1), 0..3);
        prop_oneof![
            4 => (0..n, arb_expr(n, k)).prop_map(|(i, e)| Stmt::Assign(format!("v{i}"), e)),
            1 => Just(Stmt::Skip),
            2 => (arb_guard(n, k), inner(), inner())
                .prop_map(|(g, t, e)| Stmt::If(g, t, e)),
            1 => (arb_guard(n, k), inner())
                .prop_map(|(g, b)| Stmt::While(g, b)),
        ]
        .boxed()
    }
}

fn arb_program(n: usize, k: i64) -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(n, k, 2), 1..6).prop_map(move |body| Program {
        decls: (0..n)
            .map(|i| (format!("v{i}"), Type::Int { lo: 0, hi: k - 1 }))
            .collect(),
        body,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The interpreter and the compiled system agree (including on
    /// non-termination, modelled as running out of fuel).
    #[test]
    fn interpreter_matches_compiled(
        p in arb_program(3, 3),
        init in prop::collection::vec(0i64..3, 3),
    ) {
        let env: eval::Env = init
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("v{i}"), Val::Int(v)))
            .collect();
        let direct = eval::run(&p, &env, 500);
        let compiled = compile(&p).expect("generated programs type-check");
        let s0 = compiled.initial_state(&env).expect("valid initial env");
        let machine = compiled.run_to_halt(&s0, 2_000);
        match (direct, machine) {
            (Ok(de), Ok(end)) => {
                for i in 0..3 {
                    let name = format!("v{i}");
                    prop_assert_eq!(
                        compiled.read(&end, &name).unwrap(),
                        de[&name],
                        "disagreement on {}", name
                    );
                }
            }
            (Err(strong_dependency::lang::LangError::OutOfFuel), Err(_)) => {}
            (d, m) => prop_assert!(
                false,
                "one side failed: direct = {:?}, machine = {:?}", d.is_ok(), m.is_ok()
            ),
        }
    }

    /// Pretty-printing a parsed program re-parses to the same AST.
    #[test]
    fn display_parse_roundtrip(p in arb_program(3, 3)) {
        let printed = p.to_string();
        let reparsed = parse(&printed).expect("printed programs parse");
        prop_assert_eq!(&p.decls, &reparsed.decls);
        // Statement bodies may differ in parenthesisation only; rendering
        // again must be a fixed point.
        prop_assert_eq!(printed, reparsed.to_string());
    }
}

#[test]
fn interpreter_matches_compiled_on_pathological_programs() {
    // Hand-picked cases that stress the compilation: overflow sticking,
    // nested while, if-in-while.
    for src in [
        "var a: int 0..3; var b: int 0..3; a := a + b; b := a * a;",
        "var a: int 0..3; var b: int 0..3; while a < 3 { a := a + 1; if a == 2 { b := 3; } }",
        "var a: int 0..3; var b: int 0..3; while a > 0 { while b > 0 { b := b - 1; } a := a - 1; }",
        "var a: int 0..3; var b: int 0..3; if a < b { a := b; } else { b := a; } a := a + a;",
    ] {
        let p = parse(src).unwrap();
        let compiled = compile(&p).unwrap();
        compiled.system.validate().unwrap();
        for a in 0..4i64 {
            for b in 0..4i64 {
                let env: eval::Env = [
                    ("a".to_string(), Val::Int(a)),
                    ("b".to_string(), Val::Int(b)),
                ]
                .into_iter()
                .collect();
                let direct = eval::run(&p, &env, 500).unwrap();
                let s0 = compiled.initial_state(&env).unwrap();
                let end = compiled.run_to_halt(&s0, 2_000).unwrap();
                for name in ["a", "b"] {
                    assert_eq!(
                        compiled.read(&end, name).unwrap(),
                        direct[name],
                        "src = {src}, a = {a}, b = {b}, var = {name}"
                    );
                }
            }
        }
    }
}
