#![allow(dead_code)]

//! Shared generators for the integration test suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use strong_dependency::core::{Cmd, Domain, Expr, ObjSet, Op, Phi, System, Universe};

/// A small random guarded-copy system (closed over its domains by
/// construction): `n` objects over `0..k`, `ops` operations of the shape
/// `if x ◇ c then y ← z or y ← c`.
pub fn random_system(n: usize, k: i64, ops: usize, seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|i| {
            (
                format!("x{i}"),
                Domain::int_range(0, k - 1).expect("non-empty range"),
            )
        })
        .collect();
    let u = Universe::new(objects).expect("distinct names");
    let ids: Vec<_> = u.objects().collect();
    let mut op_list = Vec::with_capacity(ops);
    for i in 0..ops {
        let guard_var = ids[rng.gen_range(0..n)];
        let c = rng.gen_range(0..k);
        let dst = ids[rng.gen_range(0..n)];
        let guard = match rng.gen_range(0..3) {
            0 => Expr::var(guard_var).lt(Expr::int(c)),
            1 => Expr::var(guard_var).eq(Expr::int(c)),
            _ => Expr::var(guard_var).ge(Expr::int(c)),
        };
        let rhs = if rng.gen_bool(0.7) {
            Expr::var(ids[rng.gen_range(0..n)])
        } else {
            Expr::int(rng.gen_range(0..k))
        };
        op_list.push(Op::from_cmd(
            format!("g{i}"),
            Cmd::when(guard, Cmd::assign(dst, rhs)),
        ));
    }
    System::new(u, op_list)
}

/// A random *autonomous* constraint: a conjunction of per-object value
/// subsets (each object restricted independently).
pub fn random_autonomous_phi(sys: &System, seed: u64) -> Phi {
    let mut rng = StdRng::seed_from_u64(seed);
    let u = sys.universe();
    let mut phi = Phi::True;
    for obj in u.objects() {
        let size = u.domain(obj).size() as i64;
        if rng.gen_bool(0.5) {
            // Restrict this object to a random nonempty prefix.
            let hi = rng.gen_range(1..=size);
            phi = phi.and(Phi::expr(Expr::var(obj).lt(Expr::int(hi))));
        }
    }
    phi
}

/// A random (possibly non-autonomous) constraint.
pub fn random_phi(sys: &System, seed: u64) -> Phi {
    let mut rng = StdRng::seed_from_u64(seed);
    let u = sys.universe();
    let ids: Vec<_> = u.objects().collect();
    if ids.len() >= 2 && rng.gen_bool(0.5) {
        let a = ids[rng.gen_range(0..ids.len())];
        let b = ids[rng.gen_range(0..ids.len())];
        let base = Phi::expr(Expr::var(a).le(Expr::var(b)));
        if rng.gen_bool(0.5) {
            base
        } else {
            base.and(random_autonomous_phi(sys, seed.wrapping_add(1)))
        }
    } else {
        random_autonomous_phi(sys, seed)
    }
}

/// A random source set and sink over the system's objects.
pub fn random_src_sink(sys: &System, seed: u64) -> (ObjSet, strong_dependency::core::ObjId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<_> = sys.universe().objects().collect();
    let size = rng.gen_range(1..=2.min(ids.len()));
    let mut src = ObjSet::empty();
    while src.len() < size {
        src.insert(ids[rng.gen_range(0..ids.len())]);
    }
    let sink = ids[rng.gen_range(0..ids.len())];
    (src, sink)
}
