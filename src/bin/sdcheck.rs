//! `sdcheck` — command-line information-flow analysis for programs in the
//! mini language, built on the Strong Dependency formalism.
//!
//! ```text
//! sdcheck analyze <file> --from VAR --to VAR [--entry EXPR] [--assert L=EXPR]...
//!     Decide whether VAR can transmit information to VAR, exactly (pair
//!     reachability). With assertions, also attempt the §6.5 Floyd-cover
//!     proof and print its certificate.
//!
//! sdcheck certify <file> --cls VAR=LEVEL... [--levels L1<L2<...]
//!     Denning-style static certification against a chain lattice
//!     (default two-point L < H).
//!
//! sdcheck compile <file>
//!     Show the pc-guarded compilation of the program.
//!
//! sdcheck run <file> --init VAR=VALUE... [--fuel N]
//!     Execute the program and print the final environment.
//!
//! sdcheck client <op> [--addr HOST:PORT] ...
//!     Talk to a running `sdserved` daemon: register systems, run
//!     depends/sinks queries remotely, fetch stats, shut it down.
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use strong_dependency::core::{ObjSet, Phi};
use strong_dependency::flow::{certify, Classification, FiniteLattice};
use strong_dependency::lang::{compile, eval, floyd, parse, Assertions, Val};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("sdcheck: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "analyze" => analyze(&args[1..]),
        "worth" => do_worth(&args[1..]),
        "certify" => do_certify(&args[1..]),
        "compile" => do_compile(&args[1..]),
        "run" => do_run(&args[1..]),
        "client" => do_client(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  sdcheck analyze <file> --from VAR --to VAR [--entry EXPR] [--assert LABEL=EXPR]...\n  \
     sdcheck worth <file> [--entry EXPR]\n  \
     sdcheck certify <file> --cls VAR=LEVEL... [--levels L1<L2<...]\n  \
     sdcheck compile <file>\n  \
     sdcheck run <file> --init VAR=VALUE... [--fuel N]\n  \
     sdcheck client (ping|register|depends|sinks|stats|metrics|slowlog|shutdown) [--addr HOST:PORT] ...\n      \
     system: --system KEY | --example NAME [--params P1,P2,...] | --program FILE\n      \
     query:  --from VAR[,VAR...] --to VAR [--phi EXPR] [--bound N] [--timeout-ms N] [--max-pairs N]\n      \
     scrape: metrics [--prom] | slowlog [--limit N]"
        .to_string()
}

/// Splits `args` into the file path and `--flag value` pairs (flags may
/// repeat).
fn parse_flags(args: &[String]) -> Result<(String, Vec<(String, String)>), String> {
    let mut file = None;
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else if file.is_none() {
            file = Some(arg.clone());
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    let file = file.ok_or_else(|| "missing input file".to_string())?;
    Ok((file, flags))
}

fn load(file: &str) -> Result<strong_dependency::lang::Program, String> {
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    parse(&src).map_err(|e| format!("{file}: {e}"))
}

fn analyze(args: &[String]) -> Result<ExitCode, String> {
    let (file, flags) = parse_flags(args)?;
    let program = load(&file)?;
    let compiled = compile(&program).map_err(|e| e.to_string())?;

    let mut from = None;
    let mut to = None;
    let mut ann = Assertions::new();
    let mut have_assertions = false;
    for (flag, value) in &flags {
        match flag.as_str() {
            "from" => from = Some(value.clone()),
            "to" => to = Some(value.clone()),
            "entry" => {
                ann = ann.with_entry(value).map_err(|e| e.to_string())?;
                have_assertions = true;
            }
            "assert" => {
                let (label, expr) = value
                    .split_once('=')
                    .ok_or_else(|| "--assert expects LABEL=EXPR".to_string())?;
                let label: i64 = label
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad label `{label}`"))?;
                ann = ann.with_at(label, expr).map_err(|e| e.to_string())?;
                have_assertions = true;
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let from = from.ok_or_else(|| "--from is required".to_string())?;
    let to = to.ok_or_else(|| "--to is required".to_string())?;

    // Exact answer first.
    let phi = floyd::entry_phi(&compiled, &ann).map_err(|e| e.to_string())?;
    let a = ObjSet::singleton(compiled.var(&from).map_err(|e| e.to_string())?);
    let beta = compiled.var(&to).map_err(|e| e.to_string())?;
    let witness = strong_dependency::core::Query::new(phi.clone(), a.clone())
        .beta(beta)
        .run_on(&compiled.system)
        .map_err(|e| e.to_string())?
        .into_witness();
    match &witness {
        Some(w) => {
            println!("FLOW: {from} ▷ {to} — information can be transmitted.");
            println!(
                "  witness history: {} ({} steps)",
                w.history,
                w.history.len()
            );
            println!("  σ1 = {}", w.sigma1.display(compiled.system.universe()));
            println!("  σ2 = {}", w.sigma2.display(compiled.system.universe()));
        }
        None => println!("NO FLOW: ¬{from} ▷φ {to} — no history transmits information."),
    }

    // Floyd proof attempt when assertions were supplied.
    if have_assertions && witness.is_none() {
        let legal = floyd::verify_assertions(&compiled, &ann).map_err(|e| e.to_string())?;
        if !legal {
            println!("note: the supplied assertions are not an inductive cover (Def 6-2).");
        } else {
            match floyd::prove_no_flow(&compiled, &ann, &from, &to).map_err(|e| e.to_string())? {
                strong_dependency::core::certificate::ProofOutcome::Proved(cert) => {
                    println!("\nFloyd-cover proof (Theorem 6-7):\n{cert}");
                }
                strong_dependency::core::certificate::ProofOutcome::Inapplicable(r) => {
                    println!("note: Floyd-cover proof inapplicable: {r}");
                }
            }
        }
    }
    Ok(if witness.is_some() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Prints the worth (§3.6) of the entry constraint: every variable-to-
/// variable information path the program still permits.
fn do_worth(args: &[String]) -> Result<ExitCode, String> {
    let (file, flags) = parse_flags(args)?;
    let program = load(&file)?;
    let compiled = compile(&program).map_err(|e| e.to_string())?;
    let mut ann = Assertions::new();
    for (flag, value) in &flags {
        match flag.as_str() {
            "entry" => ann = ann.with_entry(value).map_err(|e| e.to_string())?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let phi = floyd::entry_phi(&compiled, &ann).map_err(|e| e.to_string())?;
    let w =
        strong_dependency::core::worth::worth(&compiled.system, &phi).map_err(|e| e.to_string())?;
    let u = compiled.system.universe();
    let vars: std::collections::BTreeSet<&str> = compiled.vars.keys().map(|s| s.as_str()).collect();
    println!("permitted information paths among program variables:");
    let mut count = 0;
    for (a, b) in w.paths() {
        let (na, nb) = (u.name(a), u.name(b));
        if vars.contains(na) && vars.contains(nb) && na != nb {
            println!("  {na} ▷ {nb}");
            count += 1;
        }
    }
    if count == 0 {
        println!("  (none)");
    }
    println!("({count} non-reflexive paths; pc-involving paths omitted)");
    Ok(ExitCode::SUCCESS)
}

fn do_certify(args: &[String]) -> Result<ExitCode, String> {
    let (file, flags) = parse_flags(args)?;
    let program = load(&file)?;
    let mut levels: Vec<String> = vec!["L".into(), "H".into()];
    let mut bindings: Vec<(String, String)> = Vec::new();
    for (flag, value) in &flags {
        match flag.as_str() {
            "levels" => levels = value.split('<').map(|s| s.trim().to_string()).collect(),
            "cls" => {
                let (var, lvl) = value
                    .split_once('=')
                    .ok_or_else(|| "--cls expects VAR=LEVEL".to_string())?;
                bindings.push((var.trim().to_string(), lvl.trim().to_string()));
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let level_refs: Vec<&str> = levels.iter().map(|s| s.as_str()).collect();
    let lat = FiniteLattice::chain(&level_refs).map_err(|e| e.to_string())?;
    let mut cls = Classification::new();
    for (var, lvl) in &bindings {
        let label = lat.label(lvl).map_err(|e| e.to_string())?;
        cls = cls.with(var.clone(), label);
    }
    let result = certify(&program, &lat, &cls).map_err(|e| e.to_string())?;
    if result.ok() {
        println!("CERTIFIED: no statically detectable down-flow.");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("REJECTED: {} violation(s).", result.violations.len());
        for v in &result.violations {
            println!(
                "  `{}` — {} flow from {} to {} (target `{}`)",
                v.stmt,
                if v.implicit { "implicit" } else { "explicit" },
                lat.name(v.from),
                lat.name(v.to),
                v.target
            );
        }
        Ok(ExitCode::from(1))
    }
}

fn do_compile(args: &[String]) -> Result<ExitCode, String> {
    let (file, flags) = parse_flags(args)?;
    if let Some((f, _)) = flags.first() {
        return Err(format!("unknown flag --{f}"));
    }
    let program = load(&file)?;
    let compiled = compile(&program).map_err(|e| e.to_string())?;
    println!(
        "{} program points; entry pc = {}, exit pc = {}",
        compiled.flat.len(),
        compiled.entry,
        compiled.exit
    );
    for f in &compiled.flat {
        println!("  δ{}: {}", f.label, f.text);
    }
    println!(
        "state space: {} states",
        compiled.system.state_count().map_err(|e| e.to_string())?
    );
    Ok(ExitCode::SUCCESS)
}

fn do_run(args: &[String]) -> Result<ExitCode, String> {
    let (file, flags) = parse_flags(args)?;
    let program = load(&file)?;
    let mut env: eval::Env = BTreeMap::new();
    let mut fuel = 10_000u64;
    for (flag, value) in &flags {
        match flag.as_str() {
            "init" => {
                let (var, val) = value
                    .split_once('=')
                    .ok_or_else(|| "--init expects VAR=VALUE".to_string())?;
                let val = val.trim();
                let v = if val == "true" {
                    Val::Bool(true)
                } else if val == "false" {
                    Val::Bool(false)
                } else {
                    Val::Int(val.parse().map_err(|_| format!("bad value `{val}`"))?)
                };
                env.insert(var.trim().to_string(), v);
            }
            "fuel" => {
                fuel = value.parse().map_err(|_| format!("bad fuel `{value}`"))?;
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    // Default any missing variables to their lowest domain value.
    for (name, ty) in &program.decls {
        env.entry(name.clone()).or_insert(match ty {
            strong_dependency::lang::Type::Bool => Val::Bool(false),
            strong_dependency::lang::Type::Int { lo, .. } => Val::Int(*lo),
        });
    }
    let out = eval::run(&program, &env, fuel).map_err(|e| e.to_string())?;
    for (name, val) in &out {
        let rendered = match val {
            Val::Bool(b) => b.to_string(),
            Val::Int(i) => i.to_string(),
        };
        println!("{name} = {rendered}");
    }
    // Keep Phi referenced to make the core dependency explicit.
    let _ = Phi::True;
    Ok(ExitCode::SUCCESS)
}

/// `sdcheck client` — the remote counterpart of `analyze`, speaking the
/// sd-server JSON-lines protocol to a running `sdserved`.
fn do_client(args: &[String]) -> Result<ExitCode, String> {
    use strong_dependency::server::{Client, QueryReq, SystemDesc};

    let Some(op) = args.first() else {
        return Err(format!("client needs an operation\n{}", usage()));
    };
    let mut flags: Vec<(String, String)> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        // `--prom` is a boolean switch; every other flag takes a value.
        if name == "prom" {
            flags.push((name.to_string(), "true".to_string()));
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.push((name.to_string(), value.clone()));
    }
    let get = |k: &str| {
        flags
            .iter()
            .rev()
            .find(|(f, _)| f == k)
            .map(|(_, v)| v.as_str())
    };

    let addr = get("addr").unwrap_or("127.0.0.1:4177");
    let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;

    // The target system: an existing registry key, or a description that
    // is registered (idempotently — same content, same key) first.
    let desc = || -> Result<SystemDesc, String> {
        if let Some(name) = get("example") {
            let params = match get("params") {
                None => Vec::new(),
                Some(p) => p
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<i64>()
                            .map_err(|_| format!("bad param `{s}`"))
                    })
                    .collect::<Result<Vec<i64>, String>>()?,
            };
            Ok(SystemDesc::Example {
                name: name.to_string(),
                params,
            })
        } else if let Some(file) = get("program") {
            let source =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            Ok(SystemDesc::Program { source })
        } else {
            Err("need --system KEY, --example NAME or --program FILE".to_string())
        }
    };
    let system_key = |c: &mut Client| -> Result<u64, String> {
        if let Some(key) = get("system") {
            return key.parse().map_err(|_| format!("bad system key `{key}`"));
        }
        c.register(desc()?).map_err(|e| e.to_string())
    };

    // A query with the shared option flags applied.
    let finish_query = |mut q: QueryReq| -> Result<QueryReq, String> {
        if let Some(phi) = get("phi") {
            q.phi = Some(phi.to_string());
        }
        if let Some(b) = get("bound") {
            q.bound = Some(b.parse().map_err(|_| format!("bad bound `{b}`"))?);
        }
        if let Some(t) = get("timeout-ms") {
            q.timeout_ms = Some(t.parse().map_err(|_| format!("bad timeout `{t}`"))?);
        }
        if let Some(m) = get("max-pairs") {
            q.max_pairs = Some(m.parse().map_err(|_| format!("bad max-pairs `{m}`"))?);
        }
        Ok(q)
    };
    let from = || -> Result<Vec<String>, String> {
        let src = get("from").ok_or_else(|| "--from is required".to_string())?;
        Ok(src
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    };

    match op.as_str() {
        "ping" => {
            c.ping().map_err(|e| e.to_string())?;
            println!("pong ({addr})");
            Ok(ExitCode::SUCCESS)
        }
        "register" => {
            let key = c.register(desc()?).map_err(|e| e.to_string())?;
            println!("system {key}");
            Ok(ExitCode::SUCCESS)
        }
        "depends" => {
            let key = system_key(&mut c)?;
            let to = get("to").ok_or_else(|| "--to is required".to_string())?;
            let req = finish_query(QueryReq::depends(key, from()?, to))?;
            let resp = c.query(req).map_err(|e| e.to_string())?;
            let holds = resp
                .answer
                .as_ref()
                .and_then(|a| a.get("holds"))
                .and_then(strong_dependency::server::Json::as_bool)
                .ok_or_else(|| "malformed depends answer".to_string())?;
            let cached = if resp.cached { " (cached)" } else { "" };
            if holds {
                println!("FLOW: information can be transmitted.{cached}");
                Ok(ExitCode::from(1))
            } else {
                println!("NO FLOW: no history transmits information.{cached}");
                Ok(ExitCode::SUCCESS)
            }
        }
        "sinks" => {
            let key = system_key(&mut c)?;
            let req = finish_query(QueryReq::sinks(key, from()?))?;
            let objs = c.sinks(req).map_err(|e| e.to_string())?;
            println!("sinks: {}", objs.join(" "));
            Ok(ExitCode::SUCCESS)
        }
        "stats" => {
            let stats = c.stats().map_err(|e| e.to_string())?;
            let field = |path: &[&str]| {
                let mut v = &stats;
                for k in path {
                    v = v.get(k)?;
                }
                v.as_u64()
            };
            for (label, path) in [
                ("connections", &["connections"][..]),
                ("requests", &["requests"][..]),
                ("errors", &["errors"][..]),
                ("inflight", &["inflight"][..]),
                ("cache hits", &["cache", "hits"][..]),
                ("cache misses", &["cache", "misses"][..]),
                ("cache entries", &["cache", "entries"][..]),
            ] {
                if let Some(v) = field(path) {
                    println!("{label}: {v}");
                }
            }
            if let Some(systems) = stats.get("systems").and_then(|s| s.as_arr()) {
                println!("systems: {}", systems.len());
                for s in systems {
                    let key = s.get("system").and_then(|k| k.as_u64()).unwrap_or(0);
                    let desc = s.get("desc").and_then(|d| d.as_str()).unwrap_or("?");
                    println!("  {key}  {desc}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            use strong_dependency::server::Json;
            if get("prom").is_some() {
                // Raw Prometheus exposition, ready to pipe into a file
                // or a scrape-format validator.
                let text = c.metrics_prom().map_err(|e| e.to_string())?;
                print!("{text}");
                return Ok(ExitCode::SUCCESS);
            }
            let m = c.metrics().map_err(|e| e.to_string())?;
            let u64_at = |v: &Json, path: &[&str]| {
                let mut v = v.clone();
                for k in path {
                    v = v.get(k)?.clone();
                }
                v.as_u64()
            };
            if let Some(up) = u64_at(&m, &["uptime_s"]) {
                println!("uptime_s: {up}");
            }
            if let Some(reqs) = m.get("requests").and_then(|r| r.as_obj()) {
                println!("requests:");
                for (method, outcomes) in reqs {
                    if let Some(outcomes) = outcomes.as_obj() {
                        let cells: Vec<String> = outcomes
                            .iter()
                            .filter_map(|(o, n)| n.as_u64().map(|n| format!("{o}={n}")))
                            .collect();
                        println!("  {method}: {}", cells.join(" "));
                    }
                }
            }
            if let Some(durs) = m.get("durations").and_then(|d| d.as_obj()) {
                println!("latency (ns):");
                for (method, by_temp) in durs {
                    if let Some(by_temp) = by_temp.as_obj() {
                        for (temp, snap) in by_temp {
                            let (p50, p99, count) = (
                                u64_at(snap, &["p50_ns"]).unwrap_or(0),
                                u64_at(snap, &["p99_ns"]).unwrap_or(0),
                                u64_at(snap, &["count"]).unwrap_or(0),
                            );
                            println!("  {method}/{temp}: count={count} p50={p50} p99={p99}");
                        }
                    }
                }
            }
            for (label, path) in [
                ("cache hits", &["cache", "hits"][..]),
                ("cache misses", &["cache", "misses"][..]),
                ("oracle compiles", &["oracle", "compiles"][..]),
                ("partition hits", &["oracle", "partition_hits"][..]),
                ("slow queries", &["slowlog", "captured"][..]),
                ("access log dropped", &["access_log_dropped"][..]),
            ] {
                if let Some(v) = u64_at(&m, path) {
                    println!("{label}: {v}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "slowlog" => {
            use strong_dependency::server::Request;
            let limit = match get("limit") {
                None => None,
                Some(l) => Some(l.parse::<u64>().map_err(|_| format!("bad limit `{l}`"))?),
            };
            // Print the raw response line: each entry is a complete
            // slow-query JSON object with its phase breakdown.
            let (_, raw) = c
                .call_raw(Request::SlowLog { limit })
                .map_err(|e| e.to_string())?;
            println!("{raw}");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            c.shutdown().map_err(|e| e.to_string())?;
            println!("server draining");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown client operation `{other}`\n{}", usage())),
    }
}
