//! **strong-dependency** — an executable reproduction of Ellis Cohen's
//! *"Information Transmission in Computational Systems"* (SOSP 1977), the
//! Strong Dependency formalism for information flow.
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`core`]: the formal model, exact decision procedures for
//!   `A ▷φ β`, and the paper's proof techniques (Strong Dependency
//!   Induction, Separation of Variety, inductive covers).
//! - [`lang`]: a small imperative language compiled to pc-guarded
//!   computational systems, with Floyd assertions as inductive covers
//!   (§6.5).
//! - [`flow`]: the Denning/Case-style static information-flow baseline the
//!   paper compares against (§1.5).
//! - [`matrix`]: the §1.3 access-matrix protection substrate with the
//!   Confinement and Security problems.
//! - [`info`]: the §7.4 quantitative extension — entropy, transmitted
//!   bits, channel capacity.
//! - [`server`]: the concurrent query service — `sdserved` daemon,
//!   JSON-lines wire protocol, system registry, result cache, and the
//!   client library behind `sdcheck client`.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use sd_core as core;
pub use sd_flow as flow;
pub use sd_info as info;
pub use sd_lang as lang;
pub use sd_matrix as matrix;
pub use sd_server as server;
